package columnmap

import (
	"fmt"

	"repro/internal/vec"
)

// The cold tier. Full buckets whose records haven't been written for a
// configured number of merge epochs freeze into a FrozenBucket: one
// immutable compressed chunk per column (see internal/vec). Scans evaluate
// predicates and aggregates over the chunks in place; point reads use the
// chunks' random-access path; a delta write to a frozen record thaws the
// whole bucket back to a hot slab before the write lands.
//
// All tier transitions run on the single writer thread (the partition's RTA
// merge loop). AdvanceEpoch ticks the aging clock once per merge step;
// FreezeCold compresses candidates outside the lock (safe: no other writer
// exists) and installs each result under the full lock, so concurrent
// readers atomically switch from the hot slab to the identical frozen image.

// FrozenBucket is the immutable compressed form of one full bucket.
type FrozenBucket struct {
	chunks []vec.Chunk
	n      int   // records (always the map's bucket size)
	bytes  int64 // compressed payload bytes across all chunks
}

// Chunk returns column c's compressed chunk.
func (fb *FrozenBucket) Chunk(c int) *vec.Chunk { return &fb.chunks[c] }

// NumRecords returns the record count.
func (fb *FrozenBucket) NumRecords() int { return fb.n }

// CompressedBytes returns the compressed payload size.
func (fb *FrozenBucket) CompressedBytes() int64 { return fb.bytes }

// Value returns record off's value in column c (random access).
func (fb *FrozenBucket) Value(c, off int) uint64 {
	return vec.ChunkValue(&fb.chunks[c], off)
}

// DecompressCol materializes column c into dst (grown if needed) — the
// pooled-scratch fallback for scan shapes without a direct chunk kernel.
func (fb *FrozenBucket) DecompressCol(c int, dst []uint64) []uint64 {
	return vec.Decompress(&fb.chunks[c], dst)
}

// SetColHints installs per-column compression hints (schema value types).
// Columns beyond the slice — and every column when hints were never set —
// compress with the unsigned default, which always round-trips bit-exactly;
// hints only improve encoding choice and direct-kernel coverage. Must be
// called before concurrent use.
func (cm *ColumnMap) SetColHints(hints []vec.Hint) {
	cm.hints = append([]vec.Hint(nil), hints...)
}

// AdvanceEpoch ticks the merge-epoch clock. Writer thread only; the
// partition calls it once per merge step.
func (cm *ColumnMap) AdvanceEpoch() {
	cm.epoch++
}

// FreezeCold freezes up to maxFreeze (0 = unlimited) full hot buckets whose
// last write is at least coldAfter epochs old. coldAfter 0 freezes every
// full bucket not written in the current epoch. Returns the number of
// buckets frozen. Writer thread only.
func (cm *ColumnMap) FreezeCold(coldAfter uint64, maxFreeze int) int {
	cm.mu.RLock()
	full := cm.n / cm.bucketSize
	var cands []int
	for i := 0; i < full; i++ {
		// epoch is safe to read here: only this (writer) thread writes it.
		if cm.buckets[i].frozen == nil && cm.buckets[i].epoch+coldAfter < cm.epoch {
			cands = append(cands, i)
			if maxFreeze > 0 && len(cands) >= maxFreeze {
				break
			}
		}
	}
	cm.mu.RUnlock()
	for _, i := range cands {
		cm.freezeBucket(i)
	}
	return len(cands)
}

// freezeBucket compresses bucket i's columns (lock-free: this thread is the
// only writer) and swaps the frozen image in under the full lock.
func (cm *ColumnMap) freezeBucket(i int) {
	data := cm.buckets[i].data
	fb := &FrozenBucket{
		chunks: make([]vec.Chunk, cm.slots),
		n:      cm.bucketSize,
	}
	for c := 0; c < cm.slots; c++ {
		hint := vec.HintUint
		if c < len(cm.hints) {
			hint = cm.hints[c]
		}
		col := data[c*cm.bucketSize : (c+1)*cm.bucketSize]
		fb.chunks[c] = vec.Compress(col, cm.bucketSize, hint)
		fb.bytes += fb.chunks[c].Bytes()
	}
	cm.mu.Lock()
	cm.buckets[i].data = nil
	cm.buckets[i].frozen = fb
	cm.freezes++
	cm.coldBytes += fb.bytes
	for c := range fb.chunks {
		cm.encChunks[fb.chunks[c].Enc]++
	}
	cm.mu.Unlock()
}

// thawBucket decompresses a frozen bucket into a fresh hot slab and installs
// it under the full lock, returning the slab for the triggering write.
// Readers that captured the frozen image keep a correct view: the chunks are
// immutable and the record about to be rewritten is delta-shadowed.
func (cm *ColumnMap) thawBucket(b int, fb *FrozenBucket) []uint64 {
	if fb.n != cm.bucketSize {
		panic(fmt.Sprintf("columnmap: frozen bucket has %d records, want %d", fb.n, cm.bucketSize))
	}
	data := make([]uint64, cm.slots*cm.bucketSize)
	for c := 0; c < cm.slots; c++ {
		vec.Decompress(&fb.chunks[c], data[c*cm.bucketSize:(c+1)*cm.bucketSize])
	}
	cm.mu.Lock()
	cm.buckets[b].data = data
	cm.buckets[b].frozen = nil
	cm.thaws++
	cm.coldBytes -= fb.bytes
	for c := range fb.chunks {
		cm.encChunks[fb.chunks[c].Enc]--
	}
	cm.mu.Unlock()
	return data
}

// TierStats is a point-in-time summary of the hot/cold split.
type TierStats struct {
	HotBuckets  int
	ColdBuckets int
	// HotBytes is the hot slabs' payload; ColdBytes the compressed chunk
	// payload; ColdRawBytes what the frozen buckets would occupy hot (the
	// numerator of the compression ratio).
	HotBytes     int64
	ColdBytes    int64
	ColdRawBytes int64
	ColdChunks   int
	ColdRecords  int64
	Freezes      uint64
	Thaws        uint64
	// EncChunks counts currently-frozen chunks per encoding
	// (vec.EncRaw..EncRLE).
	EncChunks [vec.NumEnc]int64
}

// CompressionRatio returns ColdRawBytes/ColdBytes, or 1 with no cold data.
func (ts TierStats) CompressionRatio() float64 {
	if ts.ColdBytes <= 0 {
		return 1
	}
	return float64(ts.ColdRawBytes) / float64(ts.ColdBytes)
}

// Tier returns the current tier statistics. Safe from any goroutine.
func (cm *ColumnMap) Tier() TierStats {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	var ts TierStats
	for i := range cm.buckets {
		if fz := cm.buckets[i].frozen; fz != nil {
			ts.ColdBuckets++
			ts.ColdRecords += int64(fz.n)
		} else {
			ts.HotBuckets++
		}
	}
	bktBytes := int64(cm.slots*cm.bucketSize) * 8
	ts.HotBytes = int64(ts.HotBuckets) * bktBytes
	ts.ColdBytes = cm.coldBytes
	ts.ColdRawBytes = int64(ts.ColdBuckets) * bktBytes
	ts.ColdChunks = ts.ColdBuckets * cm.slots
	ts.Freezes = cm.freezes
	ts.Thaws = cm.thaws
	ts.EncChunks = cm.encChunks
	return ts
}
