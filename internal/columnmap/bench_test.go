package columnmap

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks contrasting the two access patterns ColumnMap must serve
// (§4.5): single-record Get/Put (the ESP path) and column scans (the RTA
// path), across bucket sizes.

const benchSlots = 64 // a compact record; the full schema uses ~1900 slots

func buildStore(b *testing.B, bucketSize, records int) *ColumnMap {
	b.Helper()
	cm := New(benchSlots, bucketSize)
	rec := make([]uint64, benchSlots)
	for e := 1; e <= records; e++ {
		rec[0] = uint64(e)
		for i := 1; i < benchSlots; i++ {
			rec[i] = uint64(e * i)
		}
		if _, err := cm.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
	return cm
}

func benchGather(b *testing.B, bucketSize int) {
	const records = 10_000
	cm := buildStore(b, bucketSize, records)
	dst := make([]uint64, benchSlots)
	rng := rand.New(rand.NewSource(3))
	b.SetBytes(benchSlots * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cm.Gather(uint32(rng.Intn(records)), dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGatherRowStore(b *testing.B)    { benchGather(b, 1) }
func BenchmarkGatherPAX(b *testing.B)         { benchGather(b, 3072) }
func BenchmarkGatherColumnStore(b *testing.B) { benchGather(b, 10_000) }

func benchColumnScan(b *testing.B, bucketSize int) {
	const records = 10_000
	cm := buildStore(b, bucketSize, records)
	b.SetBytes(records * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum uint64
		for _, bucket := range cm.Snapshot() {
			for _, v := range bucket.Col(7) {
				sum += v
			}
		}
		_ = sum
	}
}

func BenchmarkColumnScanRowStore(b *testing.B)    { benchColumnScan(b, 1) }
func BenchmarkColumnScanPAX(b *testing.B)         { benchColumnScan(b, 3072) }
func BenchmarkColumnScanColumnStore(b *testing.B) { benchColumnScan(b, 10_000) }

func BenchmarkUpsertExisting(b *testing.B) {
	const records = 10_000
	cm := buildStore(b, 3072, records)
	rec := make([]uint64, benchSlots)
	rng := rand.New(rand.NewSource(5))
	b.SetBytes(benchSlots * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec[0] = uint64(rng.Intn(records) + 1)
		if err := cm.Upsert(rec); err != nil {
			b.Fatal(err)
		}
	}
}
