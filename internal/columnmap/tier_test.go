package columnmap

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vec"
)

// mkTierRec builds a record with mixed column shapes: constant, small-range,
// low-cardinality, and a raw-ish counter.
func mkTierRec(e uint64, slots int, r *rand.Rand) []uint64 {
	rec := make([]uint64, slots)
	rec[0] = e
	for c := 1; c < slots; c++ {
		switch c % 4 {
		case 0:
			rec[c] = 42 // constant
		case 1:
			rec[c] = uint64(r.Intn(100)) // small range
		case 2:
			rec[c] = []uint64{7, 1 << 40, 3 << 20}[r.Intn(3)] // low cardinality
		default:
			rec[c] = r.Uint64() // incompressible
		}
	}
	return rec
}

// TestTierFreezeThawEquivalence drives upserts through epochs with an
// aggressive freeze policy and checks every read path (Gather, Value,
// Snapshot hot/frozen) against a flat oracle map after each round.
func TestTierFreezeThawEquivalence(t *testing.T) {
	const slots, bucketSize, entities = 9, 16, 200
	r := rand.New(rand.NewSource(3))
	cm := New(slots, bucketSize)
	cm.SetColHints([]vec.Hint{vec.HintUint, vec.HintInt, vec.HintUint, vec.HintFloat})
	oracle := make(map[uint64][]uint64)

	for round := 0; round < 30; round++ {
		// Touch a random subset; first round seeds everyone.
		for e := uint64(1); e <= entities; e++ {
			if round > 0 && r.Intn(10) != 0 {
				continue
			}
			rec := mkTierRec(e, slots, r)
			if err := cm.Upsert(rec); err != nil {
				t.Fatal(err)
			}
			oracle[e] = rec
		}
		cm.AdvanceEpoch()
		cm.FreezeCold(0, 0)

		dst := make([]uint64, slots)
		for e, want := range oracle {
			ok, err := cm.GatherEntity(e, dst)
			if err != nil || !ok {
				t.Fatalf("round %d entity %d: ok=%v err=%v", round, e, ok, err)
			}
			for c := range want {
				if dst[c] != want[c] {
					t.Fatalf("round %d entity %d col %d: %#x want %#x", round, e, c, dst[c], want[c])
				}
			}
			rid, _ := cm.Lookup(e)
			if v := cm.Value(rid, slots-1); v != want[slots-1] {
				t.Fatalf("round %d entity %d: Value %#x want %#x", round, e, v, want[slots-1])
			}
		}
		// Snapshot parity: hot buckets via Col, frozen via decompression.
		scratch := make([]uint64, bucketSize)
		for _, b := range cm.Snapshot() {
			for c := 0; c < slots; c++ {
				var col []uint64
				if fb := b.Frozen(); fb != nil {
					col = fb.DecompressCol(c, scratch)
				} else {
					col = b.Col(c)
				}
				for off := 0; off < b.N; off++ {
					e := cm.Value(b.Base+uint32(off), 0)
					if col[off] != oracle[e][c] {
						t.Fatalf("round %d bucket %d col %d off %d: %#x want %#x",
							round, b.Base, c, off, col[off], oracle[e][c])
					}
				}
			}
		}
	}
	ts := cm.Tier()
	if ts.Freezes == 0 || ts.Thaws == 0 {
		t.Fatalf("expected both freezes and thaws, got %+v", ts)
	}
}

// TestTierStatsAccounting checks the hot/cold byte accounting and that
// MemoryBytes shrinks when compressible buckets freeze.
func TestTierStatsAccounting(t *testing.T) {
	const slots, bucketSize = 6, 64
	cm := New(slots, bucketSize)
	rec := make([]uint64, slots)
	for e := uint64(1); e <= 4*bucketSize; e++ {
		rec[0] = e
		for c := 1; c < slots; c++ {
			rec[c] = uint64(c) // constant columns: maximally compressible
		}
		if _, err := cm.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	flatBytes := cm.MemoryBytes()
	cm.AdvanceEpoch()
	if got := cm.FreezeCold(0, 0); got != 4 {
		t.Fatalf("froze %d buckets, want 4", got)
	}
	ts := cm.Tier()
	if ts.ColdBuckets != 4 || ts.HotBuckets != 0 {
		t.Fatalf("split %+v", ts)
	}
	if ts.ColdChunks != 4*slots {
		t.Fatalf("cold chunks %d want %d", ts.ColdChunks, 4*slots)
	}
	if ts.ColdBytes >= ts.ColdRawBytes {
		t.Fatalf("no compression: cold %d raw %d", ts.ColdBytes, ts.ColdRawBytes)
	}
	if ts.CompressionRatio() < 4 {
		t.Fatalf("ratio %.2f too low for constant columns", ts.CompressionRatio())
	}
	if got := cm.MemoryBytes(); got >= flatBytes {
		t.Fatalf("memory did not shrink: %d -> %d", flatBytes, got)
	}
	// Thaw one bucket via an upsert; accounting must come back.
	rec[0] = 1
	if err := cm.Upsert(rec); err != nil {
		t.Fatal(err)
	}
	ts = cm.Tier()
	if ts.ColdBuckets != 3 || ts.HotBuckets != 1 || ts.Thaws != 1 {
		t.Fatalf("after thaw: %+v", ts)
	}
	// A partial tail bucket must never freeze.
	rec[0] = uint64(4*bucketSize + 1)
	if _, err := cm.Insert(rec); err != nil {
		t.Fatal(err)
	}
	cm.AdvanceEpoch()
	cm.AdvanceEpoch()
	cm.FreezeCold(0, 0)
	if ts := cm.Tier(); ts.ColdBuckets != 4 {
		t.Fatalf("tail bucket frozen: %+v", ts)
	}
}

// TestTierColdAfterPolicy: buckets freeze only after the configured number
// of untouched epochs, and a write resets the bucket's age.
func TestTierColdAfterPolicy(t *testing.T) {
	const slots, bucketSize = 3, 32
	cm := New(slots, bucketSize)
	rec := make([]uint64, slots)
	for e := uint64(1); e <= 2*bucketSize; e++ {
		rec[0] = e
		if _, err := cm.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cm.AdvanceEpoch()
		if n := cm.FreezeCold(3, 0); n != 0 {
			t.Fatalf("epoch %d: froze %d early", i, n)
		}
	}
	// Keep bucket 1 warm, let bucket 0 age out.
	rec[0] = uint64(bucketSize + 1)
	if err := cm.Upsert(rec); err != nil {
		t.Fatal(err)
	}
	cm.AdvanceEpoch()
	if n := cm.FreezeCold(3, 0); n != 1 {
		t.Fatalf("froze %d, want only the aged bucket", n)
	}
	if ts := cm.Tier(); ts.ColdBuckets != 1 {
		t.Fatalf("%+v", ts)
	}
}

// TestTierConcurrentReaders freezes and thaws under a storm of concurrent
// Gather/Value/Snapshot readers — the Algorithm 3 analogue for tier swaps;
// run under -race this proves the directory handoff is sound.
func TestTierConcurrentReaders(t *testing.T) {
	const slots, bucketSize, entities = 5, 32, 256
	cm := New(slots, bucketSize)
	r := rand.New(rand.NewSource(11))
	for e := uint64(1); e <= entities; e++ {
		if _, err := cm.Insert(mkTierRec(e, slots, r)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			dst := make([]uint64, slots)
			scratch := make([]uint64, bucketSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := uint64(rr.Intn(entities) + 1)
				if ok, err := cm.GatherEntity(e, dst); err != nil || !ok || dst[0] != e {
					t.Errorf("gather %d: ok=%v err=%v id=%d", e, ok, err, dst[0])
					return
				}
				for _, b := range cm.Snapshot() {
					if fb := b.Frozen(); fb != nil {
						fb.DecompressCol(int(e)%slots, scratch)
					} else {
						_ = b.Col(int(e) % slots)
					}
				}
			}
		}(int64(g))
	}
	// Writer thread: upserts age/thaw buckets while epochs tick and freeze.
	for round := 0; round < 60; round++ {
		for j := 0; j < 20; j++ {
			e := uint64(r.Intn(entities) + 1)
			rec := mkTierRec(e, slots, r)
			if err := cm.Upsert(rec); err != nil {
				t.Fatal(err)
			}
		}
		cm.AdvanceEpoch()
		cm.FreezeCold(0, 0)
	}
	close(stop)
	wg.Wait()
	if ts := cm.Tier(); ts.Freezes == 0 || ts.Thaws == 0 {
		t.Fatalf("wanted tier churn under readers, got %+v", ts)
	}
}
