package columnmap

import (
	"testing"
	"testing/quick"
)

func mkRec(entity uint64, slots int) []uint64 {
	rec := make([]uint64, slots)
	rec[0] = entity
	for i := 1; i < slots; i++ {
		rec[i] = entity*1000 + uint64(i)
	}
	return rec
}

func TestInsertGatherRoundTrip(t *testing.T) {
	cm := New(5, 4)
	for e := uint64(1); e <= 10; e++ {
		rid, err := cm.Insert(mkRec(e, 5))
		if err != nil {
			t.Fatalf("Insert(%d): %v", e, err)
		}
		if rid != uint32(e-1) {
			t.Fatalf("Insert(%d) rid = %d, want %d", e, rid, e-1)
		}
	}
	if cm.Len() != 10 {
		t.Fatalf("Len = %d, want 10", cm.Len())
	}
	dst := make([]uint64, 5)
	for e := uint64(1); e <= 10; e++ {
		ok, err := cm.GatherEntity(e, dst)
		if err != nil || !ok {
			t.Fatalf("GatherEntity(%d): ok=%v err=%v", e, ok, err)
		}
		want := mkRec(e, 5)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("entity %d slot %d = %d, want %d", e, i, dst[i], want[i])
			}
		}
	}
	if ok, _ := cm.GatherEntity(999, dst); ok {
		t.Fatal("GatherEntity on missing entity reported ok")
	}
}

func TestInsertErrors(t *testing.T) {
	cm := New(3, 2)
	if _, err := cm.Insert([]uint64{1}); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := cm.Insert(mkRec(1, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Insert(mkRec(1, 3)); err == nil {
		t.Fatal("duplicate entity accepted")
	}
	if err := cm.Gather(5, make([]uint64, 3)); err == nil {
		t.Fatal("out-of-range rid accepted")
	}
	if err := cm.Gather(0, make([]uint64, 1)); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := cm.Upsert([]uint64{1}); err == nil {
		t.Fatal("short upsert accepted")
	}
}

func TestUpsertOverwritesInPlace(t *testing.T) {
	cm := New(3, 2)
	if err := cm.Upsert(mkRec(7, 3)); err != nil {
		t.Fatal(err)
	}
	rec := mkRec(7, 3)
	rec[2] = 42
	if err := cm.Upsert(rec); err != nil {
		t.Fatal(err)
	}
	if cm.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", cm.Len())
	}
	if v := cm.Value(0, 2); v != 42 {
		t.Fatalf("Value(0,2) = %d, want 42", v)
	}
}

func TestSnapshotColumnLayout(t *testing.T) {
	cm := New(4, 3)
	for e := uint64(1); e <= 7; e++ {
		if _, err := cm.Insert(mkRec(e, 4)); err != nil {
			t.Fatal(err)
		}
	}
	bks := cm.Snapshot()
	if len(bks) != 3 {
		t.Fatalf("Snapshot returned %d buckets, want 3", len(bks))
	}
	if bks[0].N != 3 || bks[1].N != 3 || bks[2].N != 1 {
		t.Fatalf("bucket sizes %d %d %d", bks[0].N, bks[1].N, bks[2].N)
	}
	if bks[1].Base != 3 || bks[2].Base != 6 {
		t.Fatalf("bucket bases %d %d", bks[1].Base, bks[2].Base)
	}
	// Column 0 of bucket 1 should be the entity ids 4,5,6 contiguously.
	c0 := bks[1].Col(0)
	if len(c0) != 3 || c0[0] != 4 || c0[1] != 5 || c0[2] != 6 {
		t.Fatalf("bucket 1 col 0 = %v", c0)
	}
	c2 := bks[2].Col(2)
	if len(c2) != 1 || c2[0] != 7*1000+2 {
		t.Fatalf("bucket 2 col 2 = %v", c2)
	}
}

func TestBucketSizeOneIsRowStore(t *testing.T) {
	cm := New(3, 1)
	for e := uint64(1); e <= 5; e++ {
		if _, err := cm.Insert(mkRec(e, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(cm.Snapshot()); got != 5 {
		t.Fatalf("bucket count = %d, want 5 (one record per bucket)", got)
	}
	dst := make([]uint64, 3)
	if ok, err := cm.GatherEntity(3, dst); !ok || err != nil {
		t.Fatalf("GatherEntity: %v %v", ok, err)
	}
	if dst[1] != 3001 {
		t.Fatalf("slot 1 = %d", dst[1])
	}
}

func TestDefaultBucketSize(t *testing.T) {
	cm := New(2, 0)
	if cm.BucketSize() != DefaultBucketSize {
		t.Fatalf("BucketSize = %d, want %d", cm.BucketSize(), DefaultBucketSize)
	}
	if cm.Slots() != 2 {
		t.Fatalf("Slots = %d", cm.Slots())
	}
	if cm.MemoryBytes() != 0 {
		t.Fatalf("empty MemoryBytes = %d", cm.MemoryBytes())
	}
	if _, err := cm.Insert(mkRec(1, 2)); err != nil {
		t.Fatal(err)
	}
	if cm.MemoryBytes() != int64(2*DefaultBucketSize*8) {
		t.Fatalf("MemoryBytes = %d", cm.MemoryBytes())
	}
}

// TestQuickGatherInverseOfInsert property-tests that Gather is the inverse
// of Insert for arbitrary records and bucket sizes.
func TestQuickGatherInverseOfInsert(t *testing.T) {
	f := func(recs [][4]uint64, bucketSizeSeed uint8) bool {
		bucketSize := int(bucketSizeSeed%7) + 1
		cm := New(4, bucketSize)
		seen := map[uint64]bool{}
		var kept [][4]uint64
		for i, r := range recs {
			r[0] = uint64(i + 1) // unique entity ids
			if seen[r[0]] {
				continue
			}
			seen[r[0]] = true
			if _, err := cm.Insert(r[:]); err != nil {
				return false
			}
			kept = append(kept, r)
		}
		dst := make([]uint64, 4)
		for _, r := range kept {
			ok, err := cm.GatherEntity(r[0], dst)
			if !ok || err != nil {
				return false
			}
			for i := range dst {
				if dst[i] != r[i] {
					return false
				}
			}
		}
		// Snapshot covers exactly all records.
		total := 0
		for _, b := range cm.Snapshot() {
			total += b.N
		}
		return total == len(kept)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
