// Package columnmap implements ColumnMap, the PAX-style storage layout of
// the AIM Analytics Matrix (§4.5 of the paper).
//
// Records are fixed-size slot arrays ([]uint64, see internal/schema). A
// ColumnMap groups a fixed number of records (the bucket size) into Buckets;
// within a bucket, data is organized column-major: all values of column c
// are contiguous. Analytical scans therefore enjoy columnar locality while
// single-record lookups remain O(#columns) with computable addresses. A hash
// index maps application entity-ids to dense record-ids.
//
// Setting the bucket size to 1 degrades ColumnMap to a row store; setting it
// to the expected table size makes it a pure column store — the tunability
// the paper highlights.
//
// Concurrency: one writer (the partition's RTA thread during merge steps)
// and any number of readers are supported. The entity index and the bucket
// directory are guarded by an RWMutex; bucket payload slots are written only
// for records that concurrently reading ESP threads are guaranteed to find
// in the delta instead (the paper's Algorithm 3 invariant), so payload
// access is lock-free.
package columnmap

import (
	"fmt"
	"sync"
)

// DefaultBucketSize is the paper's default: the largest power of two such
// that a bucket of ~3 KB records fits in a 10 MB L3 cache.
const DefaultBucketSize = 3072

// ColumnMap is a PAX-layout table of fixed-size records.
type ColumnMap struct {
	slots      int // columns per record
	bucketSize int // records per bucket

	mu      sync.RWMutex
	buckets [][]uint64        // each bucket: slots*bucketSize words, column-major
	index   map[uint64]uint32 // entity id -> record id
	n       int               // number of records
}

// New returns an empty ColumnMap for records of the given slot count.
// bucketSize <= 0 selects DefaultBucketSize.
func New(slots, bucketSize int) *ColumnMap {
	if slots <= 0 {
		panic(fmt.Sprintf("columnmap: invalid slots %d", slots))
	}
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	return &ColumnMap{
		slots:      slots,
		bucketSize: bucketSize,
		index:      make(map[uint64]uint32),
	}
}

// Slots returns the number of columns per record.
func (cm *ColumnMap) Slots() int { return cm.slots }

// BucketSize returns the number of records per bucket.
func (cm *ColumnMap) BucketSize() int { return cm.bucketSize }

// Len returns the number of records.
func (cm *ColumnMap) Len() int {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	return cm.n
}

// Lookup returns the record id for an entity id.
func (cm *ColumnMap) Lookup(entityID uint64) (uint32, bool) {
	cm.mu.RLock()
	rid, ok := cm.index[entityID]
	cm.mu.RUnlock()
	return rid, ok
}

// Insert appends rec as a new record and returns its record id. The entity
// id is taken from slot 0. It fails if the entity already exists or the
// record has the wrong width.
func (cm *ColumnMap) Insert(rec []uint64) (uint32, error) {
	if len(rec) != cm.slots {
		return 0, fmt.Errorf("columnmap: record has %d slots, want %d", len(rec), cm.slots)
	}
	entityID := rec[0]
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if _, dup := cm.index[entityID]; dup {
		return 0, fmt.Errorf("columnmap: entity %d already exists", entityID)
	}
	rid := uint32(cm.n)
	b, off := cm.n/cm.bucketSize, cm.n%cm.bucketSize
	if b == len(cm.buckets) {
		cm.buckets = append(cm.buckets, make([]uint64, cm.slots*cm.bucketSize))
	}
	bucket := cm.buckets[b]
	for c := 0; c < cm.slots; c++ {
		bucket[c*cm.bucketSize+off] = rec[c]
	}
	cm.index[entityID] = rid
	cm.n++
	return rid, nil
}

// Upsert inserts rec if its entity is new, otherwise overwrites the existing
// record in place. This is the merge-step write path.
func (cm *ColumnMap) Upsert(rec []uint64) error {
	if len(rec) != cm.slots {
		return fmt.Errorf("columnmap: record has %d slots, want %d", len(rec), cm.slots)
	}
	if rid, ok := cm.Lookup(rec[0]); ok {
		cm.scatter(rid, rec)
		return nil
	}
	_, err := cm.Insert(rec)
	return err
}

// scatter writes rec into the slots of an existing record id.
func (cm *ColumnMap) scatter(rid uint32, rec []uint64) {
	b, off := int(rid)/cm.bucketSize, int(rid)%cm.bucketSize
	cm.mu.RLock()
	bucket := cm.buckets[b]
	cm.mu.RUnlock()
	for c := 0; c < cm.slots; c++ {
		bucket[c*cm.bucketSize+off] = rec[c]
	}
}

// Gather copies the record with the given record id into dst, which must
// have exactly Slots() elements.
func (cm *ColumnMap) Gather(rid uint32, dst []uint64) error {
	if len(dst) != cm.slots {
		return fmt.Errorf("columnmap: dst has %d slots, want %d", len(dst), cm.slots)
	}
	cm.mu.RLock()
	if int(rid) >= cm.n {
		cm.mu.RUnlock()
		return fmt.Errorf("columnmap: record id %d out of range (%d records)", rid, cm.n)
	}
	b, off := int(rid)/cm.bucketSize, int(rid)%cm.bucketSize
	bucket := cm.buckets[b]
	cm.mu.RUnlock()
	for c := 0; c < cm.slots; c++ {
		dst[c] = bucket[c*cm.bucketSize+off]
	}
	return nil
}

// GatherEntity is Lookup followed by Gather.
func (cm *ColumnMap) GatherEntity(entityID uint64, dst []uint64) (bool, error) {
	rid, ok := cm.Lookup(entityID)
	if !ok {
		return false, nil
	}
	return true, cm.Gather(rid, dst)
}

// Value returns a single slot of a record without materializing the rest —
// the computable-address point lookup the paper describes.
func (cm *ColumnMap) Value(rid uint32, col int) uint64 {
	b, off := int(rid)/cm.bucketSize, int(rid)%cm.bucketSize
	cm.mu.RLock()
	bucket := cm.buckets[b]
	cm.mu.RUnlock()
	return bucket[col*cm.bucketSize+off]
}

// Bucket is a read-only view of one bucket used by scans.
type Bucket struct {
	data       []uint64
	bucketSize int
	// N is the number of valid records in the bucket.
	N int
	// Base is the record id of the bucket's first record.
	Base uint32
}

// Col returns the column-c value slice of the bucket (N valid entries).
func (b Bucket) Col(c int) []uint64 {
	off := c * b.bucketSize
	return b.data[off : off+b.N]
}

// Snapshot returns views of all buckets as of the call. The scan step
// iterates the snapshot; records inserted afterwards are not visible, which
// is exactly the consistency the delta/main design requires (inserts only
// happen during merge steps, which never overlap scan steps on a partition).
func (cm *ColumnMap) Snapshot() []Bucket {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	out := make([]Bucket, 0, len(cm.buckets))
	remaining := cm.n
	for i, data := range cm.buckets {
		n := cm.bucketSize
		if remaining < n {
			n = remaining
		}
		out = append(out, Bucket{
			data:       data,
			bucketSize: cm.bucketSize,
			N:          n,
			Base:       uint32(i * cm.bucketSize),
		})
		remaining -= n
	}
	return out
}

// IndexEntry is one entity-id → record-id mapping from IndexSnapshot.
type IndexEntry struct {
	Entity uint64
	RID    uint32
}

// IndexSnapshot returns every (entity id, record id) pair as of the call.
// It lets a reader decide per record — before touching any payload words —
// whether the Algorithm 3 invariant makes a lock-free Gather safe, or the
// record must be read from a delta instead.
func (cm *ColumnMap) IndexSnapshot() []IndexEntry {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	out := make([]IndexEntry, 0, len(cm.index))
	for id, rid := range cm.index {
		out = append(out, IndexEntry{Entity: id, RID: rid})
	}
	return out
}

// MemoryBytes reports the approximate payload memory in use.
func (cm *ColumnMap) MemoryBytes() int64 {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	return int64(len(cm.buckets)) * int64(cm.slots*cm.bucketSize) * 8
}
