// Package columnmap implements ColumnMap, the PAX-style storage layout of
// the AIM Analytics Matrix (§4.5 of the paper).
//
// Records are fixed-size slot arrays ([]uint64, see internal/schema). A
// ColumnMap groups a fixed number of records (the bucket size) into Buckets;
// within a bucket, data is organized column-major: all values of column c
// are contiguous. Analytical scans therefore enjoy columnar locality while
// single-record lookups remain O(#columns) with computable addresses. A hash
// index maps application entity-ids to dense record-ids.
//
// Setting the bucket size to 1 degrades ColumnMap to a row store; setting it
// to the expected table size makes it a pure column store — the tunability
// the paper highlights.
//
// The main is tiered (see tier.go): full buckets untouched for a configured
// number of merge epochs freeze into immutable per-column compressed chunks
// (internal/vec Chunk) that scans evaluate in place; a write to a frozen
// record thaws its bucket back to the hot tier first.
//
// Concurrency: one writer (the partition's RTA thread during merge steps)
// and any number of readers are supported. The entity index and the bucket
// directory — including each bucket's hot-slab/frozen-chunk representation —
// are guarded by an RWMutex; bucket payload slots are written only for
// records that concurrently reading ESP threads are guaranteed to find in
// the delta instead (the paper's Algorithm 3 invariant), so payload access
// is lock-free. Freeze and thaw swap a bucket's representation under the
// full lock: a reader sees either the retained hot slab or the immutable
// chunks, and both hold correct values for every record not shadowed by the
// delta. Per-bucket epochs are touched only by the writer thread and are
// deliberately never read by reader paths.
package columnmap

import (
	"fmt"
	"sync"

	"repro/internal/vec"
)

// DefaultBucketSize is the paper's default: the largest power of two such
// that a bucket of ~3 KB records fits in a 10 MB L3 cache.
const DefaultBucketSize = 3072

// bucketState is one directory entry: exactly one of data (hot) or frozen
// (cold) is non-nil. epoch is the merge epoch of the bucket's last write;
// it is read and written only by the single writer thread.
type bucketState struct {
	data   []uint64
	frozen *FrozenBucket
	epoch  uint64
}

// ColumnMap is a PAX-layout table of fixed-size records.
type ColumnMap struct {
	slots      int // columns per record
	bucketSize int // records per bucket

	mu      sync.RWMutex
	buckets []bucketState
	index   map[uint64]uint32 // entity id -> record id
	n       int               // number of records

	// epoch is the merge-epoch clock (AdvanceEpoch); writer thread only.
	epoch uint64
	// hints are the per-column compression hints (SetColHints); immutable
	// after setup.
	hints []vec.Hint

	// Tier accounting, guarded by mu.
	freezes   uint64
	thaws     uint64
	coldBytes int64
	encChunks [vec.NumEnc]int64
}

// New returns an empty ColumnMap for records of the given slot count.
// bucketSize <= 0 selects DefaultBucketSize.
func New(slots, bucketSize int) *ColumnMap {
	if slots <= 0 {
		panic(fmt.Sprintf("columnmap: invalid slots %d", slots))
	}
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	return &ColumnMap{
		slots:      slots,
		bucketSize: bucketSize,
		index:      make(map[uint64]uint32),
	}
}

// Slots returns the number of columns per record.
func (cm *ColumnMap) Slots() int { return cm.slots }

// BucketSize returns the number of records per bucket.
func (cm *ColumnMap) BucketSize() int { return cm.bucketSize }

// Len returns the number of records.
func (cm *ColumnMap) Len() int {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	return cm.n
}

// Lookup returns the record id for an entity id.
func (cm *ColumnMap) Lookup(entityID uint64) (uint32, bool) {
	cm.mu.RLock()
	rid, ok := cm.index[entityID]
	cm.mu.RUnlock()
	return rid, ok
}

// Insert appends rec as a new record and returns its record id. The entity
// id is taken from slot 0. It fails if the entity already exists or the
// record has the wrong width.
func (cm *ColumnMap) Insert(rec []uint64) (uint32, error) {
	if len(rec) != cm.slots {
		return 0, fmt.Errorf("columnmap: record has %d slots, want %d", len(rec), cm.slots)
	}
	entityID := rec[0]
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if _, dup := cm.index[entityID]; dup {
		return 0, fmt.Errorf("columnmap: entity %d already exists", entityID)
	}
	rid := uint32(cm.n)
	b, off := cm.n/cm.bucketSize, cm.n%cm.bucketSize
	if b == len(cm.buckets) {
		cm.buckets = append(cm.buckets, bucketState{
			data: make([]uint64, cm.slots*cm.bucketSize),
		})
	}
	bucket := cm.buckets[b].data
	for c := 0; c < cm.slots; c++ {
		bucket[c*cm.bucketSize+off] = rec[c]
	}
	cm.buckets[b].epoch = cm.epoch
	cm.index[entityID] = rid
	cm.n++
	return rid, nil
}

// Upsert inserts rec if its entity is new, otherwise overwrites the existing
// record in place. This is the merge-step write path.
func (cm *ColumnMap) Upsert(rec []uint64) error {
	if len(rec) != cm.slots {
		return fmt.Errorf("columnmap: record has %d slots, want %d", len(rec), cm.slots)
	}
	if rid, ok := cm.Lookup(rec[0]); ok {
		cm.scatter(rid, rec)
		return nil
	}
	_, err := cm.Insert(rec)
	return err
}

// scatter writes rec into the slots of an existing record id, thawing the
// bucket back to the hot tier first if it is frozen.
func (cm *ColumnMap) scatter(rid uint32, rec []uint64) {
	b, off := int(rid)/cm.bucketSize, int(rid)%cm.bucketSize
	cm.mu.RLock()
	data, frozen := cm.buckets[b].data, cm.buckets[b].frozen
	cm.mu.RUnlock()
	if frozen != nil {
		data = cm.thawBucket(b, frozen)
	}
	for c := 0; c < cm.slots; c++ {
		data[c*cm.bucketSize+off] = rec[c]
	}
	// Writer thread only; reader paths never touch epoch.
	cm.buckets[b].epoch = cm.epoch
}

// Gather copies the record with the given record id into dst, which must
// have exactly Slots() elements.
func (cm *ColumnMap) Gather(rid uint32, dst []uint64) error {
	if len(dst) != cm.slots {
		return fmt.Errorf("columnmap: dst has %d slots, want %d", len(dst), cm.slots)
	}
	cm.mu.RLock()
	if int(rid) >= cm.n {
		cm.mu.RUnlock()
		return fmt.Errorf("columnmap: record id %d out of range (%d records)", rid, cm.n)
	}
	b, off := int(rid)/cm.bucketSize, int(rid)%cm.bucketSize
	data, frozen := cm.buckets[b].data, cm.buckets[b].frozen
	cm.mu.RUnlock()
	if frozen != nil {
		for c := 0; c < cm.slots; c++ {
			dst[c] = frozen.Value(c, off)
		}
		return nil
	}
	for c := 0; c < cm.slots; c++ {
		dst[c] = data[c*cm.bucketSize+off]
	}
	return nil
}

// GatherEntity is Lookup followed by Gather.
func (cm *ColumnMap) GatherEntity(entityID uint64, dst []uint64) (bool, error) {
	rid, ok := cm.Lookup(entityID)
	if !ok {
		return false, nil
	}
	return true, cm.Gather(rid, dst)
}

// Value returns a single slot of a record without materializing the rest —
// the computable-address point lookup the paper describes. Frozen buckets
// answer from the chunk's random-access path.
func (cm *ColumnMap) Value(rid uint32, col int) uint64 {
	b, off := int(rid)/cm.bucketSize, int(rid)%cm.bucketSize
	cm.mu.RLock()
	data, frozen := cm.buckets[b].data, cm.buckets[b].frozen
	cm.mu.RUnlock()
	if frozen != nil {
		return frozen.Value(col, off)
	}
	return data[col*cm.bucketSize+off]
}

// Bucket is a read-only view of one bucket used by scans: either a hot slab
// (Col) or a frozen compressed bucket (Frozen).
type Bucket struct {
	data       []uint64
	frozen     *FrozenBucket
	bucketSize int
	// N is the number of valid records in the bucket.
	N int
	// Base is the record id of the bucket's first record.
	Base uint32
}

// Col returns the column-c value slice of the bucket (N valid entries).
// Only valid for hot buckets; scans must route frozen buckets (Frozen() !=
// nil) through the chunk kernels or decompress instead.
func (b Bucket) Col(c int) []uint64 {
	off := c * b.bucketSize
	return b.data[off : off+b.N]
}

// Frozen returns the bucket's compressed representation, or nil if hot.
func (b Bucket) Frozen() *FrozenBucket { return b.frozen }

// Snapshot returns views of all buckets as of the call. The scan step
// iterates the snapshot; records inserted afterwards are not visible, which
// is exactly the consistency the delta/main design requires (inserts only
// happen during merge steps, which never overlap scan steps on a partition).
// A bucket frozen or thawed after the call keeps serving the snapshotted
// representation: hot slabs are retained by the view and frozen chunks are
// immutable, and any record rewritten meanwhile is delta-shadowed for
// readers of the snapshot's vintage.
func (cm *ColumnMap) Snapshot() []Bucket {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	out := make([]Bucket, 0, len(cm.buckets))
	remaining := cm.n
	for i := range cm.buckets {
		n := cm.bucketSize
		if remaining < n {
			n = remaining
		}
		out = append(out, Bucket{
			data:       cm.buckets[i].data,
			frozen:     cm.buckets[i].frozen,
			bucketSize: cm.bucketSize,
			N:          n,
			Base:       uint32(i * cm.bucketSize),
		})
		remaining -= n
	}
	return out
}

// IndexEntry is one entity-id → record-id mapping from IndexSnapshot.
type IndexEntry struct {
	Entity uint64
	RID    uint32
}

// IndexSnapshot returns every (entity id, record id) pair as of the call.
// It lets a reader decide per record — before touching any payload words —
// whether the Algorithm 3 invariant makes a lock-free Gather safe, or the
// record must be read from a delta instead.
func (cm *ColumnMap) IndexSnapshot() []IndexEntry {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	out := make([]IndexEntry, 0, len(cm.index))
	for id, rid := range cm.index {
		out = append(out, IndexEntry{Entity: id, RID: rid})
	}
	return out
}

// MemoryBytes reports the approximate payload memory in use: full slabs for
// hot buckets plus compressed chunk payloads for frozen ones.
func (cm *ColumnMap) MemoryBytes() int64 {
	cm.mu.RLock()
	defer cm.mu.RUnlock()
	hot := 0
	for i := range cm.buckets {
		if cm.buckets[i].frozen == nil {
			hot++
		}
	}
	return int64(hot)*int64(cm.slots*cm.bucketSize)*8 + cm.coldBytes
}
