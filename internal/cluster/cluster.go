// Package cluster implements AIM's distributed execution layer (§4.8): the
// Analytics Matrix is horizontally partitioned by entity-id across storage
// servers via a global hash, each server further partitions it across its
// RTA threads, and dimension tables plus rule sets are replicated at every
// server.
//
// Beyond the paper (which assumes a lossless fabric and permanently live
// servers), the cluster tracks per-node health with a consecutive-failure
// circuit breaker: while a node's breaker is open, fire-and-forget events
// spill into a bounded per-node retry queue replayed by a background
// drainer, so a dead or flaky storage server neither blocks the ESP
// pipeline nor silently loses the in-flight stream.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/schema"
)

// Cluster routes Get/Put/event traffic to the storage server owning each
// entity. Query scatter/gather lives in the RTA coordinator (internal/rta),
// which talks to the same Storage handles.
type Cluster struct {
	// nodes holds one atomically swappable handle per storage server, so
	// ReplaceNode can swap a restarted node in while the hot paths keep
	// reading lock-free. (Pointer-to-interface, not atomic.Value: handles
	// of different concrete types must be interchangeable.)
	nodes  []atomic.Pointer[core.Storage]
	hcfg   HealthConfig
	health []*nodeHealth

	bcfg    BatchConfig
	batches []*nodeBatch // nil unless batching is enabled

	// Follower-replica state (see replica.go). repMu guards the follower
	// lists and the per-shard promotion flag; the scan-pick and promotion
	// paths take it briefly and never across deliveries.
	rcfg         ReplicaConfig
	repMu        sync.Mutex
	followers    [][]*shardFollower
	promoting    []bool
	rr           []atomic.Uint32 // round-robin cursor per shard
	downSince    []atomic.Int64  // unix nanos the primary breaker went unhealthy
	promotions   atomic.Uint64
	replicaScans atomic.Uint64
	staleScans   atomic.Uint64
	monitorOnce  sync.Once

	drainOnce sync.Once // drainer starts lazily on first spill
	closeOnce sync.Once
	quit      chan struct{}
	wg        sync.WaitGroup
}

// Options bundles the cluster's optional tuning knobs. Zero values select
// the defaults (health tracking on, batching off).
type Options struct {
	Health   HealthConfig
	Batch    BatchConfig
	Replicas ReplicaConfig
}

// New builds a cluster over the given storage handles (in-process nodes,
// TCP clients, or a mix) with default health tracking.
func New(nodes []core.Storage) (*Cluster, error) {
	return NewWithOptions(nodes, Options{})
}

// NewWithHealth builds a cluster with an explicit health configuration.
func NewWithHealth(nodes []core.Storage, hcfg HealthConfig) (*Cluster, error) {
	return NewWithOptions(nodes, Options{Health: hcfg})
}

// NewWithOptions builds a cluster with explicit health and batching
// configurations.
func NewWithOptions(nodes []core.Storage, opts Options) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: need at least one storage node")
	}
	c := &Cluster{
		nodes:     make([]atomic.Pointer[core.Storage], len(nodes)),
		hcfg:      opts.Health.withDefaults(),
		health:    make([]*nodeHealth, len(nodes)),
		bcfg:      opts.Batch.withDefaults(),
		rcfg:      opts.Replicas.withDefaults(),
		followers: make([][]*shardFollower, len(nodes)),
		promoting: make([]bool, len(nodes)),
		rr:        make([]atomic.Uint32, len(nodes)),
		downSince: make([]atomic.Int64, len(nodes)),
		quit:      make(chan struct{}),
	}
	for i := range nodes {
		if nodes[i] == nil {
			return nil, fmt.Errorf("cluster: node %d is nil", i)
		}
		n := nodes[i]
		c.nodes[i].Store(&n)
		c.health[i] = &nodeHealth{}
	}
	if c.bcfg.MaxEvents > 1 {
		c.batches = make([]*nodeBatch, len(nodes))
		for i := range c.batches {
			c.batches[i] = &nodeBatch{}
		}
		c.startLinger()
	}
	return c, nil
}

// node returns the current handle for storage server idx.
func (c *Cluster) node(idx int) core.Storage { return *c.nodes[idx].Load() }

// ReplaceNode atomically swaps the handle of storage server idx — the
// restart path: after a crashed node recovers (checkpoint + archive-tail
// replay), the new handle takes over and the node's circuit breaker is
// reset so the spill queue accumulated during the outage replays onto the
// recovered state.
func (c *Cluster) ReplaceNode(idx int, n core.Storage) error {
	if idx < 0 || idx >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", idx)
	}
	if n == nil {
		return errors.New("cluster: ReplaceNode needs a handle")
	}
	if c.batches != nil {
		// The in-flight coalescing buffer holds events accepted for the OLD
		// handle but not yet delivered. Move them to the spill queue's tail
		// (they are newer than anything spilled during the outage, so
		// spill-then-buffer preserves stream order) before the new handle
		// goes live — otherwise a racing linger flush could deliver them to
		// the new node ahead of the older spilled events. sendMu is held so
		// no delivery of this buffer is in flight while we take it.
		b := c.batches[idx]
		b.sendMu.Lock()
		if evs := b.take(); len(evs) > 0 {
			if c.disabled() {
				// No spill queue to merge into; keep them buffered for the
				// next flush against the new handle.
				b.requeueFront(evs)
			} else if n, err := c.spillBatch(idx, evs); err != nil {
				// Spill queue full (or disabled): keep the leftover suffix
				// buffered rather than losing it.
				b.requeueFront(evs[n:])
			}
		}
		b.sendMu.Unlock()
	}
	c.nodes[idx].Store(&n)
	if !c.disabled() {
		c.health[idx].reset()
		if c.health[idx].queued() > 0 {
			c.startDrainer()
		}
	}
	return nil
}

// NewLocal starts n in-process storage nodes with the same configuration
// and returns the cluster plus the nodes (for Stats/Stop).
func NewLocal(n int, cfg core.Config) (*Cluster, []*core.StorageNode, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("cluster: invalid node count %d", n)
	}
	nodes := make([]*core.StorageNode, 0, n)
	handles := make([]core.Storage, 0, n)
	for i := 0; i < n; i++ {
		if cfg.Metrics != nil && n > 1 {
			// Distinct {node="i"} labels keep the nodes' series apart on a
			// shared registry.
			cfg.MetricsLabel = strconv.Itoa(i)
		}
		node, err := core.NewNode(cfg)
		if err != nil {
			for _, prev := range nodes {
				prev.Stop()
			}
			return nil, nil, err
		}
		nodes = append(nodes, node)
		handles = append(handles, node)
	}
	c, err := New(handles)
	if err != nil {
		return nil, nil, err
	}
	return c, nodes, nil
}

// Close flushes any coalescing buffers (best effort) and stops the
// background goroutines. It does not close the storage handles, which the
// caller owns. Idempotent.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		for idx := range c.batches {
			_ = c.flushBatch(idx)
		}
		close(c.quit)
	})
	c.wg.Wait()
}

// NumNodes returns the number of storage servers.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Nodes returns the current storage handles (for the RTA coordinator).
func (c *Cluster) Nodes() []core.Storage {
	out := make([]core.Storage, len(c.nodes))
	for i := range c.nodes {
		out[i] = c.node(i)
	}
	return out
}

// Health returns a snapshot of node i's breaker and spill-queue state.
func (c *Cluster) Health(i int) NodeHealth { return c.health[i].snapshot() }

// indexFor returns the index of the storage server owning the entity — the
// paper's global hash function h. It deliberately uses a different mixer
// than the node's internal partition hash h_i so the two levels
// decorrelate.
func (c *Cluster) indexFor(entityID uint64) int {
	h := entityID * 0xD6E8FEB86659FD93
	h ^= h >> 32
	return int(h % uint64(len(c.nodes)))
}

// NodeFor returns the storage server owning the entity.
func (c *Cluster) NodeFor(entityID uint64) core.Storage {
	return c.node(c.indexFor(entityID))
}

// disabled reports whether health tracking is turned off.
func (c *Cluster) disabled() bool { return c.hcfg.FailureThreshold < 0 }

// ProcessEventAsync routes an event to its owning server. If the server's
// breaker is open (or delivery fails), the event spills to the node's
// bounded retry queue and nil is returned — the ESP pipeline keeps moving.
// Only when spilling is impossible does it fail fast with a NodeDownError.
// With batching enabled (Options.Batch) the event joins the owning node's
// coalescing buffer instead and delivery errors surface at flush time, where
// they take the same spill path.
func (c *Cluster) ProcessEventAsync(ev event.Event) error {
	idx := c.indexFor(ev.Caller)
	if c.batches != nil {
		return c.bufferEvent(idx, ev)
	}
	if c.disabled() {
		return c.node(idx).ProcessEventAsync(ev)
	}
	h := c.health[idx]
	if !h.allow(time.Now()) {
		return c.spillOrFail(idx, ev, nil)
	}
	err := c.node(idx).ProcessEventAsync(ev)
	h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
	if err == nil {
		return nil
	}
	return c.spillOrFail(idx, ev, err)
}

func (c *Cluster) spillOrFail(idx int, ev event.Event, cause error) error {
	h := c.health[idx]
	if h.spill(ev, c.hcfg.RetryQueue, c.hcfg.SpillPolicy) {
		c.startDrainer()
		return nil
	}
	if c.hcfg.RetryQueue < 0 {
		// Spilling disabled by configuration: fail fast with the node's
		// identity, as always.
		if cause == nil {
			cause = c.lastErr(idx)
		}
		return &NodeDownError{Node: idx, Err: cause}
	}
	if c.hcfg.SpillPolicy == SpillBlock && c.spillWait(idx, ev) {
		return nil
	}
	// Full queue under SpillReject (or shutdown during SpillBlock): the
	// caller keeps the event and gets a typed, retryable rejection.
	return c.spillRejection(idx)
}

// spillRejection builds the typed overload error for a full spill queue.
func (c *Cluster) spillRejection(idx int) error {
	return fmt.Errorf("cluster: node %d: %w", idx,
		&core.OverloadedError{RetryAfter: c.hcfg.SpillRetryAfter, Reason: "spill-queue"})
}

// spillWait blocks until ev fits node idx's spill queue (SpillBlock policy),
// reporting false if the cluster shuts down first.
func (c *Cluster) spillWait(idx int, ev event.Event) bool {
	h := c.health[idx]
	tick := c.hcfg.RetryInterval / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	for {
		if h.spill(ev, c.hcfg.RetryQueue, c.hcfg.SpillPolicy) {
			c.startDrainer()
			return true
		}
		c.startDrainer() // ensure someone is draining the queue we wait on
		select {
		case <-c.quit:
			return false
		case <-time.After(tick):
		}
	}
}

// startDrainer lazily launches the background goroutine that replays
// spilled events once their node's breaker lets traffic through again.
func (c *Cluster) startDrainer() {
	c.drainOnce.Do(func() {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			tick := time.NewTicker(c.hcfg.RetryInterval)
			defer tick.Stop()
			for {
				select {
				case <-c.quit:
					return
				case <-tick.C:
					for idx := range c.nodes {
						c.drainNode(idx)
					}
				}
			}
		}()
	})
}

// drainBatch bounds how many queued events one replay delivery carries. A
// modest batch keeps a recovering node from being hit with the entire spill
// queue in one call while still amortizing per-delivery costs ~64x.
const drainBatch = 64

// drainNode replays queued events for one node until the queue empties or a
// delivery fails (undelivered events go back to the front of the queue).
// Replay is batched: each round pops up to drainBatch events and delivers
// them as one ProcessEventBatch; on a partial failure only the undelivered
// suffix is requeued, so no event is applied twice.
func (c *Cluster) drainNode(idx int) {
	h := c.health[idx]
	for {
		select {
		case <-c.quit:
			return
		default:
		}
		if h.queued() == 0 {
			return
		}
		if !h.allow(time.Now()) {
			return
		}
		evs := h.popBatch(drainBatch)
		if len(evs) == 0 {
			// Raced with another drain; give the probe token back.
			h.releaseProbe()
			return
		}
		delivered, err := core.ProcessBatch(c.node(idx), evs)
		h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
		h.addReplayed(delivered)
		if err != nil {
			h.requeueFront(evs[delivered:])
			return
		}
	}
}

// ProcessEvent routes an event synchronously and returns its firing count.
// Synchronous events cannot spill (the caller expects the firing count);
// with an open breaker they fail fast instead of hammering a dead node.
func (c *Cluster) ProcessEvent(ev event.Event) (int, error) {
	idx := c.indexFor(ev.Caller)
	if c.batches != nil {
		// Earlier same-caller events may still be buffered; they must land
		// first to keep the single-stream application order.
		_ = c.flushBatch(idx)
	}
	if c.disabled() {
		return c.node(idx).ProcessEvent(ev)
	}
	h := c.health[idx]
	if !h.allow(time.Now()) {
		return 0, &NodeDownError{Node: idx, Err: c.lastErr(idx)}
	}
	n, err := c.node(idx).ProcessEvent(ev)
	h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
	return n, err
}

// flushOverloadBudget bounds how long FlushEvents keeps retrying typed
// admission-control rejections before surfacing one. Flush is a barrier:
// a node shedding load is expected to drain within moments, so waiting it
// out (paced by the server's retry-after hints) makes recovery automatic
// for callers that treat flush errors as fatal.
const flushOverloadBudget = 5 * time.Second

// retryOverloaded runs op, retrying typed overload rejections with the
// rejection's retry-after hint until the deadline passes or the cluster
// shuts down. Non-overload errors return immediately.
func (c *Cluster) retryOverloaded(deadline time.Time, op func() error) error {
	err := op()
	for err != nil && errors.Is(err, core.ErrOverloaded) && time.Now().Before(deadline) {
		retry, ok := core.RetryAfterHint(err)
		if !ok || retry <= 0 {
			retry = c.hcfg.RetryInterval
		}
		select {
		case <-c.quit:
			return err
		case <-time.After(retry):
		}
		err = op()
	}
	return err
}

// FlushEvents first synchronously replays every spilled event, then
// flushes every server's ESP queues. If a node still refuses events its
// queue is left intact and a NodeDownError is returned, so callers can
// retry the flush after the node recovers without losing the stream.
// Typed overload rejections are retried internally with the server's
// retry-after pacing (bounded by flushOverloadBudget), so a flush issued
// during a load spike resolves by waiting the spike out.
func (c *Cluster) FlushEvents() error {
	var firstErr error
	deadline := time.Now().Add(flushOverloadBudget)
	for idx := range c.batches {
		idx := idx
		err := c.retryOverloaded(deadline, func() error { return c.flushBatch(idx) })
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for idx := range c.nodes {
		idx := idx
		err := c.retryOverloaded(deadline, func() error { return c.flushSpilled(idx) })
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for idx := range c.nodes {
		err := c.node(idx).FlushEvents()
		if !c.disabled() {
			c.health[idx].record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flushSpilled synchronously drains node idx's retry queue in batches.
// Admission-control rejections surface typed (the node is alive, just
// shedding) so FlushEvents can pace its retries off the retry-after hint;
// anything else means the node is down.
func (c *Cluster) flushSpilled(idx int) error {
	h := c.health[idx]
	for {
		evs := h.popBatch(drainBatch)
		if len(evs) == 0 {
			return nil
		}
		delivered, err := core.ProcessBatch(c.node(idx), evs)
		h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
		h.addReplayed(delivered)
		if err != nil {
			h.requeueFront(evs[delivered:])
			if errors.Is(err, core.ErrOverloaded) {
				return fmt.Errorf("cluster: node %d: %w", idx, err)
			}
			return &NodeDownError{Node: idx, Err: err}
		}
	}
}

// Get fetches the entity's record from its owning server. With batching
// enabled the node's coalescing buffer is flushed first, so the read
// observes every event this cluster handle accepted for the entity.
func (c *Cluster) Get(entityID uint64) (schema.Record, uint64, bool, error) {
	idx := c.indexFor(entityID)
	if c.batches != nil {
		_ = c.flushBatch(idx)
	}
	if c.disabled() {
		return c.node(idx).Get(entityID)
	}
	h := c.health[idx]
	if !h.allow(time.Now()) {
		return nil, 0, false, &NodeDownError{Node: idx, Err: c.lastErr(idx)}
	}
	rec, v, ok, err := c.node(idx).Get(entityID)
	h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
	return rec, v, ok, err
}

// Put stores a record on its owning server.
func (c *Cluster) Put(rec schema.Record) error {
	idx := c.indexFor(rec.EntityID())
	if c.batches != nil {
		_ = c.flushBatch(idx)
	}
	if c.disabled() {
		return c.node(idx).Put(rec)
	}
	h := c.health[idx]
	if !h.allow(time.Now()) {
		return &NodeDownError{Node: idx, Err: c.lastErr(idx)}
	}
	err := c.node(idx).Put(rec)
	h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
	return err
}

// ConditionalPut conditionally stores a record on its owning server.
// Version conflicts come from a live node and do not count against it.
func (c *Cluster) ConditionalPut(rec schema.Record, expected uint64) error {
	idx := c.indexFor(rec.EntityID())
	if c.batches != nil {
		_ = c.flushBatch(idx)
	}
	if c.disabled() {
		return c.node(idx).ConditionalPut(rec, expected)
	}
	h := c.health[idx]
	if !h.allow(time.Now()) {
		return &NodeDownError{Node: idx, Err: c.lastErr(idx)}
	}
	err := c.node(idx).ConditionalPut(rec, expected)
	h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
	return err
}

func (c *Cluster) lastErr(idx int) error {
	h := c.health[idx]
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}
