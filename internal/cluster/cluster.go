// Package cluster implements AIM's distributed execution layer (§4.8): the
// Analytics Matrix is horizontally partitioned by entity-id across storage
// servers via a global hash, each server further partitions it across its
// RTA threads, and dimension tables plus rule sets are replicated at every
// server.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/schema"
)

// Cluster routes Get/Put/event traffic to the storage server owning each
// entity. Query scatter/gather lives in the RTA coordinator (internal/rta),
// which talks to the same Storage handles.
type Cluster struct {
	nodes []core.Storage
}

// New builds a cluster over the given storage handles (in-process nodes,
// TCP clients, or a mix).
func New(nodes []core.Storage) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: need at least one storage node")
	}
	return &Cluster{nodes: nodes}, nil
}

// NewLocal starts n in-process storage nodes with the same configuration
// and returns the cluster plus the nodes (for Stats/Stop).
func NewLocal(n int, cfg core.Config) (*Cluster, []*core.StorageNode, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("cluster: invalid node count %d", n)
	}
	nodes := make([]*core.StorageNode, 0, n)
	handles := make([]core.Storage, 0, n)
	for i := 0; i < n; i++ {
		node, err := core.NewNode(cfg)
		if err != nil {
			for _, prev := range nodes {
				prev.Stop()
			}
			return nil, nil, err
		}
		nodes = append(nodes, node)
		handles = append(handles, node)
	}
	c, err := New(handles)
	if err != nil {
		return nil, nil, err
	}
	return c, nodes, nil
}

// NumNodes returns the number of storage servers.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Nodes returns the storage handles (for the RTA coordinator).
func (c *Cluster) Nodes() []core.Storage { return c.nodes }

// NodeFor returns the storage server owning the entity — the paper's global
// hash function h. It deliberately uses a different mixer than the node's
// internal partition hash h_i so the two levels decorrelate.
func (c *Cluster) NodeFor(entityID uint64) core.Storage {
	h := entityID * 0xD6E8FEB86659FD93
	h ^= h >> 32
	return c.nodes[h%uint64(len(c.nodes))]
}

// ProcessEventAsync routes an event to its owning server.
func (c *Cluster) ProcessEventAsync(ev event.Event) error {
	return c.NodeFor(ev.Caller).ProcessEventAsync(ev)
}

// ProcessEvent routes an event synchronously and returns its firing count.
func (c *Cluster) ProcessEvent(ev event.Event) (int, error) {
	return c.NodeFor(ev.Caller).ProcessEvent(ev)
}

// FlushEvents flushes every server's ESP queues.
func (c *Cluster) FlushEvents() error {
	for _, n := range c.nodes {
		if err := n.FlushEvents(); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches the entity's record from its owning server.
func (c *Cluster) Get(entityID uint64) (schema.Record, uint64, bool, error) {
	return c.NodeFor(entityID).Get(entityID)
}

// Put stores a record on its owning server.
func (c *Cluster) Put(rec schema.Record) error {
	return c.NodeFor(rec.EntityID()).Put(rec)
}

// ConditionalPut conditionally stores a record on its owning server.
func (c *Cluster) ConditionalPut(rec schema.Record, expected uint64) error {
	return c.NodeFor(rec.EntityID()).ConditionalPut(rec, expected)
}
