package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/event"
)

// ErrNodeDown is the sentinel matched by errors.Is for operations refused
// because a storage node's circuit breaker is open (and, for events, the
// spill queue is full or disabled).
var ErrNodeDown = errors.New("cluster: node unavailable")

// NodeDownError reports which node was unavailable and why.
type NodeDownError struct {
	// Node is the index of the storage server in the cluster.
	Node int
	// Err is the last failure observed from the node (may be nil).
	Err error
}

func (e *NodeDownError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("cluster: node %d unavailable: %v", e.Node, e.Err)
	}
	return fmt.Sprintf("cluster: node %d unavailable", e.Node)
}

func (e *NodeDownError) Unwrap() error        { return e.Err }
func (e *NodeDownError) Is(target error) bool { return target == ErrNodeDown }

// BreakerState is a node circuit breaker's state.
type BreakerState int

const (
	// BreakerClosed: the node is healthy; traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures crossed the threshold; traffic is
	// refused (events spill) until the probe interval elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe operation is allowed through; success
	// closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// SpillPolicy selects what the event spill path does when a node's bounded
// retry queue is full.
type SpillPolicy int

const (
	// SpillReject (the default) refuses the event with a typed overload
	// error carrying a retry-after hint. The caller keeps the event —
	// nothing is silently lost — and its own backoff/retry machinery
	// decides when to resubmit.
	SpillReject SpillPolicy = iota
	// SpillDropOldest evicts the oldest queued events to admit new ones,
	// preferring fresh data under sustained overload. Evictions are real
	// losses, counted in NodeHealth.Dropped.
	SpillDropOldest
	// SpillBlock waits for the drainer to free queue space, applying
	// head-of-line backpressure to the producer instead of shedding. If
	// the node never recovers the producer blocks until the cluster is
	// closed.
	SpillBlock
)

// String implements fmt.Stringer.
func (p SpillPolicy) String() string {
	switch p {
	case SpillReject:
		return "reject"
	case SpillDropOldest:
		return "drop-oldest"
	case SpillBlock:
		return "block"
	}
	return "unknown"
}

// ParseSpillPolicy maps a flag string onto a SpillPolicy.
func ParseSpillPolicy(s string) (SpillPolicy, error) {
	switch s {
	case "reject", "":
		return SpillReject, nil
	case "drop-oldest":
		return SpillDropOldest, nil
	case "block":
		return SpillBlock, nil
	}
	return SpillReject, fmt.Errorf("cluster: unknown spill policy %q (want reject, drop-oldest or block)", s)
}

// HealthConfig tunes per-node failure tracking. The zero value selects the
// defaults.
type HealthConfig struct {
	// FailureThreshold is how many consecutive failures open the breaker
	// (default 5; negative disables health tracking entirely).
	FailureThreshold int
	// ProbeInterval is how long an open breaker waits before letting a
	// half-open probe through (default 500ms).
	ProbeInterval time.Duration
	// RetryQueue bounds the per-node spill queue for fire-and-forget
	// events while the node is down (default 4096; negative disables
	// spilling, making event routing fail fast instead).
	RetryQueue int
	// RetryInterval is the background drainer's pacing (default 20ms).
	RetryInterval time.Duration
	// SpillPolicy selects the overflow behavior of a full spill queue
	// (default SpillReject: surface a typed overload error).
	SpillPolicy SpillPolicy
	// SpillRetryAfter is the retry hint attached to overflow rejections
	// (default: RetryInterval, the drainer's pacing — the earliest a slot
	// can plausibly free up).
	SpillRetryAfter time.Duration
}

func (cfg HealthConfig) withDefaults() HealthConfig {
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.RetryQueue == 0 {
		cfg.RetryQueue = 4096
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 20 * time.Millisecond
	}
	if cfg.SpillRetryAfter <= 0 {
		cfg.SpillRetryAfter = cfg.RetryInterval
	}
	return cfg
}

// NodeHealth is an observable snapshot of one node's failure state.
type NodeHealth struct {
	State        BreakerState
	ConsecFails  int
	QueuedEvents int
	Spilled      uint64 // events ever diverted to the spill queue
	Replayed     uint64 // spilled events successfully delivered
	Dropped      uint64 // events lost to drop-oldest evictions
	Rejected     uint64 // events refused with a typed overload error (caller retains them)
	LastErr      error
}

// nodeHealth is the live circuit breaker + spill queue for one node.
type nodeHealth struct {
	mu       sync.Mutex
	state    BreakerState
	fails    int
	lastErr  error
	probeAt  time.Time // when an open breaker may half-open
	probing  bool      // a half-open probe is in flight
	queue    []event.Event
	spilled  uint64
	replayed uint64
	dropped  uint64
	rejected uint64
}

// allow reports whether an operation may be sent to the node right now.
// In the open state it flips to half-open once the probe interval elapsed,
// admitting exactly one probe.
func (h *nodeHealth) allow(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(h.probeAt) {
			return false
		}
		h.state = BreakerHalfOpen
		h.probing = true
		return true
	default: // half-open: one probe at a time
		if h.probing {
			return false
		}
		h.probing = true
		return true
	}
}

// record folds an operation outcome into the breaker. Version conflicts
// and admission-control rejections are application-level outcomes from a
// live node, not failures: an overloaded node is shedding on purpose, and
// opening the breaker for it would turn backpressure into an outage.
func (h *nodeHealth) record(err error, threshold int, probeInterval time.Duration) {
	isFailure := err != nil &&
		!errors.Is(err, core.ErrVersionConflict) &&
		!errors.Is(err, core.ErrOverloaded)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probing = false
	if !isFailure {
		h.state = BreakerClosed
		h.fails = 0
		return
	}
	h.fails++
	h.lastErr = err
	if h.state == BreakerHalfOpen || h.fails >= threshold {
		h.state = BreakerOpen
		h.probeAt = time.Now().Add(probeInterval)
	}
}

// reset closes the breaker after the node's handle was replaced (restart
// recovery). The spill queue and its counters are preserved: the events
// queued during the outage still need to replay onto the recovered node.
func (h *nodeHealth) reset() {
	h.mu.Lock()
	h.state = BreakerClosed
	h.fails = 0
	h.lastErr = nil
	h.probing = false
	h.mu.Unlock()
}

// releaseProbe returns an unused half-open probe token (the caller decided
// not to send anything after all).
func (h *nodeHealth) releaseProbe() {
	h.mu.Lock()
	h.probing = false
	h.mu.Unlock()
}

// spill queues ev for background replay; reports false when the queue is
// full or disabled. A full queue under SpillDropOldest evicts its oldest
// events to admit ev (counted as dropped — those are real losses); under
// SpillReject the refusal is counted so callers can surface a typed
// overload error. SpillBlock refusals are not counted: the caller polls
// until a slot frees up, and counting every poll would inflate the stat.
func (h *nodeHealth) spill(ev event.Event, bound int, policy SpillPolicy) bool {
	if bound < 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if bound > 0 && len(h.queue) >= bound {
		if policy != SpillDropOldest {
			if policy == SpillReject {
				h.rejected++
			}
			return false
		}
		evict := len(h.queue) - bound + 1
		h.queue = h.queue[evict:]
		h.dropped += uint64(evict)
	}
	h.queue = append(h.queue, ev)
	h.spilled++
	return true
}

// popBatch removes up to max oldest queued events, preserving their order.
// The returned slice is a copy, safe to hand to a delivery that may retain
// it.
func (h *nodeHealth) popBatch(max int) []event.Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.queue) == 0 {
		return nil
	}
	n := min(max, len(h.queue))
	evs := make([]event.Event, n)
	copy(evs, h.queue[:n])
	h.queue = h.queue[n:]
	return evs
}

// requeueFront puts the undelivered suffix of a popped batch back at the
// front, preserving order relative to events queued meanwhile.
func (h *nodeHealth) requeueFront(evs []event.Event) {
	if len(evs) == 0 {
		return
	}
	h.mu.Lock()
	h.queue = append(append(make([]event.Event, 0, len(evs)+len(h.queue)), evs...), h.queue...)
	h.mu.Unlock()
}

// addReplayed counts n successfully redelivered events.
func (h *nodeHealth) addReplayed(n int) {
	if n == 0 {
		return
	}
	h.mu.Lock()
	h.replayed += uint64(n)
	h.mu.Unlock()
}

func (h *nodeHealth) queued() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.queue)
}

func (h *nodeHealth) snapshot() NodeHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	return NodeHealth{
		State:        h.state,
		ConsecFails:  h.fails,
		QueuedEvents: len(h.queue),
		Spilled:      h.spilled,
		Replayed:     h.replayed,
		Dropped:      h.dropped,
		Rejected:     h.rejected,
		LastErr:      h.lastErr,
	}
}
