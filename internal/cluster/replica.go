package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/rta"
)

// ErrNoFollower is returned by Promote when the shard has no promotable
// follower attached.
var ErrNoFollower = errors.New("cluster: no promotable follower")

// DefaultMaxLagEvents is the replica-read freshness bound selected by
// ReplicaConfig.MaxLagEvents: 0.
const DefaultMaxLagEvents = 4096

// ReplicaConfig tunes follower replicas attached to the cluster's shards:
// the freshness/availability trade for replica-served scans, and the
// automatic-promotion policy that replaces a dead primary with its
// most-caught-up follower.
type ReplicaConfig struct {
	// MaxLagEvents bounds how stale (in events behind the primary's
	// frontier) a follower may be and still serve RTA scans while its
	// primary is healthy. 0 selects DefaultMaxLagEvents; negative means
	// followers never serve scans (pure hot standbys). While the primary's
	// breaker is open the bound is waived: a stale answer from the
	// most-caught-up follower beats no answer, and the result still says
	// which shards a replica served.
	MaxLagEvents int
	// AutoPromote turns on the failure monitor: when a shard's primary
	// breaker stays non-closed for PromoteAfter, the shard auto-promotes.
	// It needs health tracking enabled to observe the breaker.
	AutoPromote bool
	// PromoteAfter is how long a primary must stay unhealthy before
	// auto-promotion fires (default 1s). Longer values ride out restarts
	// that ReplaceNode would recover; shorter values shrink the blackout.
	PromoteAfter time.Duration
	// CheckInterval paces the failure monitor (default 50ms).
	CheckInterval time.Duration
	// ReplayTail, when set, tops a sealed follower up during promotion: it
	// must feed every surviving primary WAL event at/after fromLSN to emit
	// in LSN order (repl.ReplayArchiveTail over the dead primary's salvaged
	// archive). Nil skips the top-up — acknowledged events past the
	// follower's watermark are then lost on failover.
	ReplayTail func(shard int, fromLSN uint64, emit func(evs []event.Event) error) error
	// OnPromote, when set, is called after a successful promotion with the
	// shard and the follower's sealed watermark (before tail top-up).
	OnPromote func(shard int, sealedLSN uint64)
}

func (cfg ReplicaConfig) withDefaults() ReplicaConfig {
	if cfg.MaxLagEvents == 0 {
		cfg.MaxLagEvents = DefaultMaxLagEvents
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = time.Second
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 50 * time.Millisecond
	}
	return cfg
}

// shardFollower pairs a follower with its own scan breaker, so a broken
// replica stops serving queries without affecting its siblings.
type shardFollower struct {
	f *repl.Follower
	h *nodeHealth
}

// AttachFollower registers f as a follower replica of shard. The follower
// (and its storage node) stays owned by the caller; the cluster routes
// freshness-bounded scans at it and may seal it via Promote.
func (c *Cluster) AttachFollower(shard int, f *repl.Follower) error {
	if shard < 0 || shard >= len(c.nodes) {
		return fmt.Errorf("cluster: no shard %d", shard)
	}
	if f == nil {
		return errors.New("cluster: AttachFollower needs a follower")
	}
	c.repMu.Lock()
	c.followers[shard] = append(c.followers[shard], &shardFollower{f: f, h: &nodeHealth{}})
	c.repMu.Unlock()
	if c.rcfg.AutoPromote && !c.disabled() {
		c.startPromoteMonitor()
	}
	return nil
}

// Followers returns the shard's currently attached followers (a promoted
// follower is no longer listed).
func (c *Cluster) Followers(shard int) []*repl.Follower {
	c.repMu.Lock()
	defer c.repMu.Unlock()
	out := make([]*repl.Follower, len(c.followers[shard]))
	for i, sf := range c.followers[shard] {
		out[i] = sf.f
	}
	return out
}

// Promotions reports how many shards promoted a follower so far.
func (c *Cluster) Promotions() uint64 { return c.promotions.Load() }

var _ rta.Backends = (*Cluster)(nil)

// NumShards implements rta.Backends.
func (c *Cluster) NumShards() int { return len(c.nodes) }

// Handle implements rta.Backends: it picks the scan handle for one shard.
// With a healthy primary, scans round-robin across followers within the
// MaxLagEvents freshness bound (offloading the primary, PolarDB-IMCI
// style) and fall back to the primary when none qualifies. With the
// primary's breaker open, the lag bound is waived and the most-caught-up
// live follower serves — a stale-but-correct answer flagged Replica in the
// result — so RTA keeps answering through the failover blackout.
func (c *Cluster) Handle(shard int) (core.Storage, rta.HandleInfo) {
	primary := c.node(shard)
	c.repMu.Lock()
	fols := c.followers[shard]
	c.repMu.Unlock()
	if len(fols) == 0 || c.rcfg.MaxLagEvents < 0 {
		return primary, rta.HandleInfo{}
	}
	primaryUp := c.disabled() || c.health[shard].snapshot().State == BreakerClosed
	var pick *shardFollower
	if primaryUp {
		start := int(c.rr[shard].Add(1))
		for i := 0; i < len(fols); i++ {
			sf := fols[(start+i)%len(fols)]
			if !c.scanServable(sf) {
				continue
			}
			if sf.f.Lag() <= uint64(c.rcfg.MaxLagEvents) {
				pick = sf
				break
			}
		}
	} else {
		for _, sf := range fols {
			if !c.scanServable(sf) {
				continue
			}
			if pick == nil || sf.f.AppliedLSN() > pick.f.AppliedLSN() {
				pick = sf
			}
		}
		if pick != nil {
			c.staleScans.Add(1)
		}
	}
	if pick == nil {
		return primary, rta.HandleInfo{}
	}
	c.replicaScans.Add(1)
	return trackedStorage{Storage: pick.f.Node(), h: pick.h, cfg: c.hcfg},
		rta.HandleInfo{Replica: true, LagEvents: pick.f.Lag()}
}

// scanServable reports whether a follower may serve scans right now: not
// sealed by a promotion, tail loop live (a never-started or dead tail has
// no trustworthy lag reading), and its own breaker closed.
func (c *Cluster) scanServable(sf *shardFollower) bool {
	if sf.f.Sealed() || !sf.f.Running() || sf.f.Err() != nil {
		return false
	}
	return sf.h.snapshot().State == BreakerClosed
}

// trackedStorage routes a follower's scan outcomes into its breaker, so a
// replica that starts failing queries is dropped from the rotation.
type trackedStorage struct {
	core.Storage
	h   *nodeHealth
	cfg HealthConfig
}

func (t trackedStorage) SubmitQuery(q *query.Query) (*query.Partial, error) {
	p, err := t.Storage.SubmitQuery(q)
	t.h.record(err, t.cfg.FailureThreshold, t.cfg.ProbeInterval)
	return p, err
}

func (t trackedStorage) SubmitQueryAsync(q *query.Query) (<-chan core.QueryResponse, error) {
	ch, err := t.Storage.SubmitQueryAsync(q)
	if err != nil {
		t.h.record(err, t.cfg.FailureThreshold, t.cfg.ProbeInterval)
		return nil, err
	}
	out := make(chan core.QueryResponse, 1)
	go func() {
		r := <-ch
		t.h.record(r.Err, t.cfg.FailureThreshold, t.cfg.ProbeInterval)
		out <- r
	}()
	return out, nil
}

// startPromoteMonitor lazily launches the failure monitor driving
// auto-promotion.
func (c *Cluster) startPromoteMonitor() {
	c.monitorOnce.Do(func() {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			tick := time.NewTicker(c.rcfg.CheckInterval)
			defer tick.Stop()
			for {
				select {
				case <-c.quit:
					return
				case <-tick.C:
					for shard := range c.nodes {
						c.checkPromote(shard)
					}
				}
			}
		}()
	})
}

// checkPromote promotes shard once its primary breaker has been
// continuously non-closed for PromoteAfter.
func (c *Cluster) checkPromote(shard int) {
	c.repMu.Lock()
	hasFollower := len(c.followers[shard]) > 0
	c.repMu.Unlock()
	if !hasFollower {
		return
	}
	if c.health[shard].snapshot().State == BreakerClosed {
		c.downSince[shard].Store(0)
		return
	}
	now := time.Now().UnixNano()
	since := c.downSince[shard].Load()
	if since == 0 {
		c.downSince[shard].CompareAndSwap(0, now)
		return
	}
	if time.Duration(now-since) < c.rcfg.PromoteAfter {
		return
	}
	c.downSince[shard].Store(0)
	_, _ = c.Promote(shard) // a failed attempt re-arms via the breaker staying open
}

// Promote replaces shard's primary with its most-caught-up follower — the
// zero-loss failover handshake:
//
//  1. The follower is picked and removed from the scan rotation under the
//     promotion lock (one promotion per shard at a time).
//  2. Its replay is sealed at the applied watermark W (repl.Follower.Promote
//     drains the ESP pipeline), so its own WAL is exactly the primary's
//     prefix [0, W).
//  3. ReplayTail tops it up with the dead primary's surviving WAL suffix
//     [W, frontier) — every event the primary durably acknowledged lands on
//     the follower exactly once, in order.
//  4. ReplaceNode re-points ingest at the follower's node; the breaker
//     resets and the outage's spill queue replays after the suffix, keeping
//     the at-least-once redelivery contract for in-flight events.
//
// Manual invocations work the same way (forced failover / maintenance).
func (c *Cluster) Promote(shard int) (uint64, error) {
	if shard < 0 || shard >= len(c.nodes) {
		return 0, fmt.Errorf("cluster: no shard %d", shard)
	}
	c.repMu.Lock()
	if c.promoting[shard] {
		c.repMu.Unlock()
		return 0, fmt.Errorf("cluster: shard %d promotion already in flight", shard)
	}
	fols := c.followers[shard]
	best := -1
	for i, sf := range fols {
		if sf.f.Sealed() {
			continue
		}
		if best < 0 || sf.f.AppliedLSN() > fols[best].f.AppliedLSN() {
			best = i
		}
	}
	if best < 0 {
		c.repMu.Unlock()
		return 0, ErrNoFollower
	}
	chosen := fols[best]
	c.promoting[shard] = true
	rest := make([]*shardFollower, 0, len(fols)-1)
	rest = append(append(rest, fols[:best]...), fols[best+1:]...)
	c.followers[shard] = rest
	c.repMu.Unlock()
	defer func() {
		c.repMu.Lock()
		c.promoting[shard] = false
		c.repMu.Unlock()
	}()

	sealed, err := chosen.f.Promote()
	if err != nil {
		return sealed, fmt.Errorf("cluster: promote shard %d: seal: %w", shard, err)
	}
	node := chosen.f.Node()
	if c.rcfg.ReplayTail != nil {
		err := c.rcfg.ReplayTail(shard, sealed, func(evs []event.Event) error {
			// Through the node's durable batch path: the suffix lands in the
			// promoted node's own WAL right after its shipped prefix.
			return node.ProcessEventBatch(evs)
		})
		if err != nil {
			return sealed, fmt.Errorf("cluster: promote shard %d: tail replay: %w", shard, err)
		}
		if err := node.FlushEvents(); err != nil {
			return sealed, fmt.Errorf("cluster: promote shard %d: drain: %w", shard, err)
		}
	}
	if err := c.ReplaceNode(shard, node); err != nil {
		return sealed, err
	}
	c.promotions.Add(1)
	if c.rcfg.OnPromote != nil {
		c.rcfg.OnPromote(shard, sealed)
	}
	return sealed, nil
}
