package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
)

// newLocalOpts boots n in-process nodes under a cluster with explicit
// options, for exercising the batched routing paths.
func newLocalOpts(t *testing.T, n int, opts Options) (*Cluster, []*core.StorageNode) {
	t.Helper()
	sch := clusterSchema(t)
	nodes := make([]*core.StorageNode, n)
	handles := make([]core.Storage, n)
	for i := range nodes {
		node, err := core.NewNode(core.Config{
			Schema: sch, Partitions: 2, BucketSize: 32,
			IdleMergePause: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		handles[i] = node
	}
	c, err := NewWithOptions(handles, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, node := range nodes {
			node.Stop()
		}
	})
	return c, nodes
}

func sumProcessed(nodes []*core.StorageNode) uint64 {
	var total uint64
	for _, n := range nodes {
		total += n.Stats().EventsProcessed
	}
	return total
}

func waitSumProcessed(t *testing.T, nodes []*core.StorageNode, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := sumProcessed(nodes); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes processed %d events, want %d", sumProcessed(nodes), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterBatchingDeliversAll routes a stream through per-node
// coalescing buffers (size-triggered flushes plus the FlushEvents drain)
// and checks nothing is lost or duplicated across nodes.
func TestClusterBatchingDeliversAll(t *testing.T) {
	c, nodes := newLocalOpts(t, 3, Options{Batch: BatchConfig{MaxEvents: 8, Linger: -1}})
	const n = 500
	for i := 0; i < n; i++ {
		ev := event.Event{Caller: uint64(i%97) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-batched ingress joins the same buffers.
	batch := make([]event.Event, 100)
	for i := range batch {
		batch[i] = event.Event{Caller: uint64(i%97) + 1, Timestamp: int64(1000 + i), Duration: 5, Cost: 1}
	}
	if err := c.ProcessEventBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := sumProcessed(nodes); got != n+100 {
		t.Fatalf("nodes processed %d events, want %d", got, n+100)
	}
}

// TestClusterBatchLingerFlush checks a quiet stream does not strand
// buffered events: the linger loop ships size-incomplete buffers.
func TestClusterBatchLingerFlush(t *testing.T) {
	c, nodes := newLocalOpts(t, 2, Options{Batch: BatchConfig{MaxEvents: 1024, Linger: 2 * time.Millisecond}})
	for i := 0; i < 10; i++ {
		ev := event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	// No flush call: only the linger loop can deliver these.
	waitSumProcessed(t, nodes, 10)
}

// TestClusterGetFlushesBuffer checks routing order: a Get on an entity
// flushes its node's coalescing buffer first, so the read cannot observe a
// state missing events this handle already accepted.
func TestClusterGetFlushesBuffer(t *testing.T) {
	c, nodes := newLocalOpts(t, 2, Options{Batch: BatchConfig{MaxEvents: 1024, Linger: -1}})
	for i := 0; i < 5; i++ {
		ev := event.Event{Caller: 7, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := c.Get(7); err != nil {
		t.Fatal(err)
	}
	// The Get was the only possible flush trigger (huge buffer, no linger);
	// the events must now be at the owning node.
	waitSumProcessed(t, nodes, 5)
}

// haltingStorage delivers events until its budget runs out, then fails —
// the shape of a node dying mid-batch. It exposes the delivered prefix so
// tests can check exactly-once, in-order redelivery.
type haltingStorage struct {
	flakyStorage
	budget int // remaining deliveries before failures start; -1 = unlimited
}

func (h *haltingStorage) ProcessEventAsync(ev event.Event) error {
	if h.budget == 0 {
		return errInjected
	}
	if h.budget > 0 {
		h.budget--
	}
	return h.flakyStorage.ProcessEventAsync(ev)
}

// TestClusterBatchSpillAndReplay kills delivery mid-flush: the batch's
// delivered prefix must stay delivered, the undelivered suffix must spill
// and replay after recovery, and the node must see the original stream
// order with no duplicates.
func TestClusterBatchSpillAndReplay(t *testing.T) {
	// Budget 2: a 4-event flush delivers 2, then fails. haltingStorage has no
	// ProcessEventBatch, so delivery takes core.ProcessBatch's per-event
	// fallback — the path that reports partial progress.
	// RetryInterval is huge so the background drainer never races the
	// assertions below; replay goes through FlushEvents' synchronous path.
	hs := &haltingStorage{budget: 2}
	c, err := NewWithOptions([]core.Storage{hs}, Options{
		Health: HealthConfig{
			FailureThreshold: 3, ProbeInterval: 5 * time.Millisecond,
			RetryQueue: 100, RetryInterval: time.Minute,
		},
		Batch: BatchConfig{MaxEvents: 4, Linger: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	evs := make([]event.Event, 4)
	for i := range evs {
		evs[i] = event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(evs[i]); err != nil {
			t.Fatalf("event %d: buffered send surfaced %v", i, err)
		}
	}
	if got := hs.deliveredCount(); got != 2 {
		t.Fatalf("delivered %d events before the fault, want 2", got)
	}
	h := c.Health(0)
	if h.QueuedEvents != 2 {
		t.Fatalf("spill queue holds %d events, want 2: %+v", h.QueuedEvents, h)
	}

	// Recover the node; FlushEvents replays the spilled suffix synchronously.
	hs.budget = -1
	if err := c.FlushEvents(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	hs.mu.Lock()
	got := append([]event.Event(nil), hs.delivered...)
	hs.mu.Unlock()
	if len(got) != len(evs) {
		t.Fatalf("delivered %d events, want %d", len(got), len(evs))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("delivery %d: got %+v, want %+v (order or duplication broken)", i, got[i], evs[i])
		}
	}
	h = c.Health(0)
	if h.QueuedEvents != 0 || h.Replayed != 2 || h.Dropped != 0 {
		t.Fatalf("health after replay = %+v, want queued 0, replayed 2, dropped 0", h)
	}
}

// slowBatchStorage records whole-batch deliveries, stalling size-incomplete
// batches (the ones the linger loop ships) to widen the window between a
// batch being swapped out of its buffer and it reaching the node — the
// window in which an unserialized linger flush would be overtaken by the
// producer's next size-triggered flush.
type slowBatchStorage struct {
	flakyStorage
	full int // batches below this size sleep before recording
}

func (s *slowBatchStorage) ProcessEventBatch(evs []event.Event) error {
	if len(evs) < s.full {
		time.Sleep(3 * time.Millisecond)
	}
	s.mu.Lock()
	s.delivered = append(s.delivered, evs...)
	s.mu.Unlock()
	return nil
}

// TestClusterBatchDeliveryOrder races the linger loop against size-triggered
// flushes on a node with erratic delivery latency: batches must reach the
// node in buffer order, so same-caller events are never applied out of
// order (the ordering half of the batched-vs-per-event equivalence
// contract).
func TestClusterBatchDeliveryOrder(t *testing.T) {
	ss := &slowBatchStorage{full: 4}
	c, err := NewWithOptions([]core.Storage{ss}, Options{
		Batch: BatchConfig{MaxEvents: 4, Linger: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	const n = 200
	for i := 0; i < n; i++ {
		ev := event.Event{Caller: uint64(i%3) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			// Pause with a partial buffer so the linger loop regularly grabs
			// a batch (which then stalls in delivery) while the producer's
			// next size-triggered flush races it.
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	ss.mu.Lock()
	got := append([]event.Event(nil), ss.delivered...)
	ss.mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d events, want %d", len(got), n)
	}
	last := make(map[uint64]int64)
	for i, ev := range got {
		if ev.Timestamp <= last[ev.Caller] {
			t.Fatalf("delivery %d: caller %d timestamp %d arrived after %d — batches reordered",
				i, ev.Caller, ev.Timestamp, last[ev.Caller])
		}
		last[ev.Caller] = ev.Timestamp
	}
}

// TestClusterBatchDisabledHealthRetains checks that with health tracking
// disabled (no spill queue) a failed flush does not drop buffered events:
// the undelivered suffix stays requeued at the buffer head and a flush after
// recovery delivers the whole stream in order, without duplicates.
func TestClusterBatchDisabledHealthRetains(t *testing.T) {
	fs := &flakyStorage{}
	c, err := NewWithOptions([]core.Storage{fs}, Options{
		Health: HealthConfig{FailureThreshold: -1},
		Batch:  BatchConfig{MaxEvents: 2, Linger: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	fs.down.Store(true)

	evs := make([]event.Event, 6)
	for i := range evs {
		evs[i] = event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(evs[i]); err != nil {
			t.Fatalf("event %d: buffered send surfaced %v", i, err)
		}
	}
	if got := fs.deliveredCount(); got != 0 {
		t.Fatalf("%d events delivered to a down node", got)
	}

	fs.down.Store(false)
	if err := c.FlushEvents(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	fs.mu.Lock()
	got := append([]event.Event(nil), fs.delivered...)
	fs.mu.Unlock()
	if len(got) != len(evs) {
		t.Fatalf("delivered %d events, want %d (events dropped without a spill queue)", len(got), len(evs))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("delivery %d: got %+v, want %+v (order or duplication broken)", i, got[i], evs[i])
		}
	}
}

// TestClusterBatchBreakerOpenSpills checks a flush against an open breaker
// does not even touch the node: the whole batch spills and replays once the
// node recovers.
func TestClusterBatchBreakerOpenSpills(t *testing.T) {
	fs := &flakyStorage{}
	c, err := NewWithOptions([]core.Storage{fs}, Options{
		Health: HealthConfig{
			FailureThreshold: 2, ProbeInterval: time.Minute,
			RetryQueue: 100, RetryInterval: time.Minute,
		},
		Batch: BatchConfig{MaxEvents: 2, Linger: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	fs.down.Store(true)

	// Two full flushes fail and open the breaker; the third flush spills
	// without a delivery attempt, so delivered stays 0 for the whole outage.
	for i := 0; i < 6; i++ {
		ev := event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	h := c.Health(0)
	if h.State != BreakerOpen || h.QueuedEvents != 6 || fs.deliveredCount() != 0 {
		t.Fatalf("health after failed flushes = %+v (delivered %d), want open breaker, 6 queued, 0 delivered",
			h, fs.deliveredCount())
	}

	fs.down.Store(false)
	if err := c.FlushEvents(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if got := fs.deliveredCount(); got != 6 {
		t.Fatalf("replayed %d events, want 6 (health %+v)", got, c.Health(0))
	}
	h = c.Health(0)
	if h.QueuedEvents != 0 || h.Replayed != 6 {
		t.Fatalf("health after replay = %+v, want queued 0, replayed 6", h)
	}
}

// TestBatchSpillOverflowDoesNotDropEvents is the regression test for the
// silent-loss bug in the coalescing path: when a flush-time spill overflows
// the bounded retry queue under the default reject policy, the leftover
// suffix used to be counted as dropped and discarded. It must instead stay
// in the coalescing buffer and eventually reach the node.
func TestBatchSpillOverflowDoesNotDropEvents(t *testing.T) {
	fs := &flakyStorage{}
	c, err := NewWithOptions([]core.Storage{fs}, Options{
		Health: HealthConfig{
			FailureThreshold: 1, ProbeInterval: 2 * time.Millisecond,
			RetryQueue: 2, RetryInterval: time.Hour,
			SpillRetryAfter: time.Millisecond,
		},
		Batch: BatchConfig{MaxEvents: 4, Linger: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fs.down.Store(true)
	const events = 10
	for i := 0; i < events; i++ {
		if err := c.ProcessEventAsync(event.Event{Caller: uint64(i + 1)}); err != nil {
			t.Fatalf("event %d: buffered ingest must accept, got %v", i, err)
		}
	}
	h := c.Health(0)
	if h.Dropped != 0 {
		t.Fatalf("reject policy silently dropped %d events: %+v", h.Dropped, h)
	}
	// Every offered event is still owned somewhere: delivered to the node,
	// parked in the spill queue, or retained in the coalescing buffer.
	c.batches[0].mu.Lock()
	buffered := len(c.batches[0].buf)
	c.batches[0].mu.Unlock()
	if got := fs.deliveredCount() + h.QueuedEvents + buffered; got != events {
		t.Fatalf("accounted for %d/%d events (delivered=%d queued=%d buffered=%d)",
			got, events, fs.deliveredCount(), h.QueuedEvents, buffered)
	}

	// Recovery: one flush lands everything, in spite of the full queue.
	fs.down.Store(false)
	if err := c.FlushEvents(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if got := fs.deliveredCount(); got != events {
		t.Fatalf("delivered %d/%d events after recovery", got, events)
	}
}
