package cluster

import (
	"strconv"

	"repro/internal/obs"
)

// Instrument registers pull-based health metrics on reg: per-node breaker
// state and spill-queue depth gauges plus spilled/replayed/dropped counters,
// all read from the live nodeHealth state at collection time (no hot-path
// cost).
func (c *Cluster) Instrument(reg *obs.Registry) {
	for i := range c.nodes {
		h := c.health[i]
		node := strconv.Itoa(i)
		reg.GaugeFunc(obs.Label("aim_cluster_breaker_state", "target", node),
			"Circuit-breaker state of the storage server: 0 closed, 1 open, 2 half-open.",
			func() float64 {
				s := h.snapshot()
				return float64(s.State)
			})
		reg.GaugeFunc(obs.Label("aim_cluster_spill_queue", "target", node),
			"Fire-and-forget events queued for replay while the server is down.",
			func() float64 { return float64(h.queued()) })
		reg.CounterFunc(obs.Label("aim_cluster_events_spilled_total", "target", node),
			"Events ever diverted to the spill queue.",
			func() float64 {
				s := h.snapshot()
				return float64(s.Spilled)
			})
		reg.CounterFunc(obs.Label("aim_cluster_events_replayed_total", "target", node),
			"Spilled events successfully delivered by the drainer.",
			func() float64 {
				s := h.snapshot()
				return float64(s.Replayed)
			})
		reg.CounterFunc(obs.Label("aim_cluster_events_dropped_total", "target", node),
			"Events lost to drop-oldest spill-queue evictions.",
			func() float64 {
				s := h.snapshot()
				return float64(s.Dropped)
			})
		reg.CounterFunc(obs.Label("aim_cluster_events_rejected_total", "target", node),
			"Events refused with a typed overload error because the spill queue was full.",
			func() float64 {
				s := h.snapshot()
				return float64(s.Rejected)
			})
		shard := i
		reg.GaugeFunc(obs.Label("aim_cluster_followers", "target", node),
			"Follower replicas currently attached to the shard.",
			func() float64 {
				c.repMu.Lock()
				defer c.repMu.Unlock()
				return float64(len(c.followers[shard]))
			})
	}
	reg.CounterFunc("aim_cluster_promotions_total",
		"Followers promoted to primary (automatic and manual failovers).",
		func() float64 { return float64(c.promotions.Load()) })
	reg.CounterFunc("aim_cluster_replica_scans_total",
		"Shard scans routed to follower replicas instead of primaries.",
		func() float64 { return float64(c.replicaScans.Load()) })
	reg.CounterFunc("aim_cluster_stale_replica_scans_total",
		"Replica-routed scans served with the freshness bound waived because the primary breaker was open.",
		func() float64 { return float64(c.staleScans.Load()) })
}
