package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

// flakyStorage is a core.Storage stub whose operations fail while `down`
// is set, for driving the circuit breaker deterministically.
type flakyStorage struct {
	down atomic.Bool

	mu        sync.Mutex
	delivered []event.Event
	condPuts  int
}

var errInjected = errors.New("flaky: injected failure")

func (f *flakyStorage) fail() bool { return f.down.Load() }

func (f *flakyStorage) ProcessEventAsync(ev event.Event) error {
	if f.fail() {
		return errInjected
	}
	f.mu.Lock()
	f.delivered = append(f.delivered, ev)
	f.mu.Unlock()
	return nil
}

func (f *flakyStorage) ProcessEvent(ev event.Event) (int, error) {
	if err := f.ProcessEventAsync(ev); err != nil {
		return 0, err
	}
	return 0, nil
}

func (f *flakyStorage) FlushEvents() error {
	if f.fail() {
		return errInjected
	}
	return nil
}

func (f *flakyStorage) Get(entityID uint64) (schema.Record, uint64, bool, error) {
	if f.fail() {
		return nil, 0, false, errInjected
	}
	return nil, 0, false, nil
}

func (f *flakyStorage) Put(rec schema.Record) error {
	if f.fail() {
		return errInjected
	}
	return nil
}

func (f *flakyStorage) ConditionalPut(rec schema.Record, expected uint64) error {
	if f.fail() {
		return errInjected
	}
	f.mu.Lock()
	f.condPuts++
	f.mu.Unlock()
	return core.ErrVersionConflict
}

func (f *flakyStorage) SubmitQueryAsync(q *query.Query) (<-chan core.QueryResponse, error) {
	if f.fail() {
		return nil, errInjected
	}
	ch := make(chan core.QueryResponse, 1)
	ch <- core.QueryResponse{Partial: query.NewPartial(q)}
	return ch, nil
}

func (f *flakyStorage) SubmitQuery(q *query.Query) (*query.Partial, error) {
	if f.fail() {
		return nil, errInjected
	}
	return query.NewPartial(q), nil
}

func (f *flakyStorage) deliveredCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.delivered)
}

func flakyCluster(t *testing.T, hcfg HealthConfig) (*Cluster, *flakyStorage) {
	t.Helper()
	fs := &flakyStorage{}
	c, err := NewWithHealth([]core.Storage{fs}, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, fs
}

func TestBreakerOpensSpillsAndReplays(t *testing.T) {
	c, fs := flakyCluster(t, HealthConfig{
		FailureThreshold: 3, ProbeInterval: 5 * time.Millisecond,
		RetryQueue: 1000, RetryInterval: time.Millisecond,
	})
	fs.down.Store(true)
	const events = 50
	for i := 0; i < events; i++ {
		ev := event.Event{Caller: uint64(i + 1), Timestamp: int64(i + 1)}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatalf("event %d: spill should absorb failures, got %v", i, err)
		}
	}
	h := c.Health(0)
	if h.State != BreakerOpen && h.State != BreakerHalfOpen {
		t.Fatalf("breaker = %v after %d failures, want open", h.State, events)
	}
	if h.QueuedEvents == 0 || h.Spilled == 0 {
		t.Fatalf("nothing spilled: %+v", h)
	}
	if got := fs.deliveredCount(); got != 0 {
		t.Fatalf("%d events delivered to a down node", got)
	}

	// Heal: the background drainer replays the queue via half-open probes.
	fs.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for fs.deliveredCount() < events {
		if time.Now().After(deadline) {
			t.Fatalf("drainer replayed only %d/%d events; health %+v",
				fs.deliveredCount(), events, c.Health(0))
		}
		time.Sleep(time.Millisecond)
	}
	h = c.Health(0)
	if h.State != BreakerClosed {
		t.Fatalf("breaker = %v after recovery, want closed", h.State)
	}
	if h.Replayed != events {
		t.Fatalf("replayed = %d, want %d", h.Replayed, events)
	}
}

func TestFailFastWhenSpillDisabled(t *testing.T) {
	c, fs := flakyCluster(t, HealthConfig{
		FailureThreshold: 2, ProbeInterval: time.Hour, RetryQueue: -1,
	})
	fs.down.Store(true)
	var sawNodeDown bool
	for i := 0; i < 10; i++ {
		err := c.ProcessEventAsync(event.Event{Caller: uint64(i + 1)})
		if err == nil {
			t.Fatalf("event %d accepted with spilling disabled on a down node", i)
		}
		if errors.Is(err, ErrNodeDown) {
			sawNodeDown = true
			var nde *NodeDownError
			if !errors.As(err, &nde) || nde.Node != 0 {
				t.Fatalf("bad NodeDownError: %v", err)
			}
		}
	}
	if !sawNodeDown {
		t.Fatal("breaker never tripped to ErrNodeDown")
	}
	// Sync ops fail fast too while open.
	if _, _, _, err := c.Get(1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Get on open breaker = %v, want ErrNodeDown", err)
	}
	if err := c.Put(schemaRecord(t, 1)); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Put on open breaker = %v, want ErrNodeDown", err)
	}
	if _, err := c.ProcessEvent(event.Event{Caller: 1}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("ProcessEvent on open breaker = %v, want ErrNodeDown", err)
	}
}

func TestQueueBoundRejectsTypedWhenFull(t *testing.T) {
	c, fs := flakyCluster(t, HealthConfig{
		FailureThreshold: 1, ProbeInterval: time.Hour, RetryQueue: 5,
		RetryInterval: time.Hour,
	})
	fs.down.Store(true)
	var refused int
	for i := 0; i < 20; i++ {
		if err := c.ProcessEventAsync(event.Event{Caller: uint64(i + 1)}); err != nil {
			if !errors.Is(err, core.ErrOverloaded) {
				t.Fatalf("unexpected error %v", err)
			}
			if retry, ok := core.RetryAfterHint(err); !ok || retry <= 0 {
				t.Fatalf("overflow rejection carries no retry-after hint: %v", err)
			}
			refused++
		}
	}
	h := c.Health(0)
	if h.QueuedEvents != 5 {
		t.Fatalf("queue = %d, want bound 5", h.QueuedEvents)
	}
	if refused == 0 || h.Rejected == 0 {
		t.Fatalf("full queue never refused events: refused=%d health=%+v", refused, h)
	}
	// Under the default reject policy nothing is silently lost: every
	// event is either queued for replay or refused back to its caller.
	if h.Dropped != 0 {
		t.Fatalf("reject policy dropped %d events", h.Dropped)
	}
	if int(h.Spilled)+refused != 20 {
		t.Fatalf("spilled %d + refused %d != 20 offered", h.Spilled, refused)
	}
}

func TestSpillDropOldestEvictsForFreshEvents(t *testing.T) {
	c, fs := flakyCluster(t, HealthConfig{
		FailureThreshold: 1, ProbeInterval: time.Hour, RetryQueue: 5,
		RetryInterval: time.Hour, SpillPolicy: SpillDropOldest,
	})
	fs.down.Store(true)
	for i := 0; i < 20; i++ {
		if err := c.ProcessEventAsync(event.Event{Caller: uint64(i + 1)}); err != nil {
			t.Fatalf("event %d: drop-oldest must always accept, got %v", i, err)
		}
	}
	h := c.Health(0)
	if h.QueuedEvents != 5 {
		t.Fatalf("queue = %d, want bound 5", h.QueuedEvents)
	}
	if h.Dropped != 15 || h.Rejected != 0 {
		t.Fatalf("want 15 evictions and no rejections, got %+v", h)
	}
	// The queue holds the newest five events.
	c.health[0].mu.Lock()
	first := c.health[0].queue[0].Caller
	c.health[0].mu.Unlock()
	if first != 16 {
		t.Fatalf("oldest surviving event is caller %d, want 16", first)
	}
}

func TestVersionConflictIsNotANodeFailure(t *testing.T) {
	c, fs := flakyCluster(t, HealthConfig{FailureThreshold: 2, ProbeInterval: time.Hour})
	rec := schemaRecord(t, 1)
	for i := 0; i < 20; i++ {
		if err := c.ConditionalPut(rec, 99); !errors.Is(err, core.ErrVersionConflict) {
			t.Fatalf("ConditionalPut = %v, want version conflict", err)
		}
	}
	if h := c.Health(0); h.State != BreakerClosed {
		t.Fatalf("version conflicts opened the breaker: %+v", h)
	}
	_ = fs
}

func TestFlushReplaysSpilledEvents(t *testing.T) {
	c, fs := flakyCluster(t, HealthConfig{
		FailureThreshold: 1, ProbeInterval: time.Hour, RetryQueue: 100,
		RetryInterval: time.Hour, // drainer effectively off; Flush must replay
	})
	fs.down.Store(true)
	const events = 30
	for i := 0; i < events; i++ {
		if err := c.ProcessEventAsync(event.Event{Caller: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("flush with a down node = %v, want ErrNodeDown", err)
	}
	fs.down.Store(false)
	if err := c.FlushEvents(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if got := fs.deliveredCount(); got != events {
		t.Fatalf("flush replayed %d/%d events", got, events)
	}
}

func schemaRecord(t *testing.T, id uint64) schema.Record {
	t.Helper()
	return clusterSchema(t).NewRecord(id)
}

// TestReplaceNodeReplaysSpillOntoRecoveredNode models a node restart: the
// old handle dies, events spill, then the restarted node's handle is
// swapped in and the drainer replays the entire outage backlog onto it.
func TestReplaceNodeReplaysSpillOntoRecoveredNode(t *testing.T) {
	c, fs := flakyCluster(t, HealthConfig{
		FailureThreshold: 2, ProbeInterval: time.Hour, // breaker stays open
		RetryQueue: 1000, RetryInterval: time.Millisecond,
	})
	fs.down.Store(true)
	const events = 40
	for i := 0; i < events; i++ {
		ev := event.Event{Caller: uint64(i + 1), Timestamp: int64(i + 1)}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatalf("event %d not absorbed: %v", i, err)
		}
	}
	if h := c.Health(0); h.QueuedEvents == 0 {
		t.Fatalf("nothing queued: %+v", h)
	}
	// The "restarted" node comes back with a fresh handle.
	recovered := &flakyStorage{}
	if err := c.ReplaceNode(0, recovered); err != nil {
		t.Fatal(err)
	}
	if h := c.Health(0); h.State != BreakerClosed {
		t.Fatalf("breaker after replace = %v", h.State)
	}
	deadline := time.Now().Add(5 * time.Second)
	for recovered.deliveredCount() < events {
		if time.Now().After(deadline) {
			t.Fatalf("replayed %d/%d onto recovered node (health %+v)",
				recovered.deliveredCount(), events, c.Health(0))
		}
		time.Sleep(time.Millisecond)
	}
	if h := c.Health(0); h.QueuedEvents != 0 || h.Replayed < events {
		t.Fatalf("queue not drained: %+v", h)
	}
	// New traffic reaches the new handle, not the old one.
	before := fs.deliveredCount()
	if err := c.ProcessEventAsync(event.Event{Caller: 7, Timestamp: 99}); err != nil {
		t.Fatal(err)
	}
	if fs.deliveredCount() != before {
		t.Fatal("event reached the dead handle")
	}
	if err := c.ReplaceNode(5, recovered); err == nil {
		t.Fatal("out-of-range replace accepted")
	}
	if err := c.ReplaceNode(0, nil); err == nil {
		t.Fatal("nil handle accepted")
	}
}
