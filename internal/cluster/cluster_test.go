package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

func clusterSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func newLocal(t *testing.T, n int) (*Cluster, []*core.StorageNode) {
	t.Helper()
	sch := clusterSchema(t)
	c, nodes, err := NewLocal(n, core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Stop()
		}
	})
	return c, nodes
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, _, err := NewLocal(0, core.Config{}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, _, err := NewLocal(2, core.Config{}); err == nil {
		t.Fatal("config without schema accepted")
	}
}

func TestRoutingIsStableAndSpread(t *testing.T) {
	c, _ := newLocal(t, 4)
	counts := map[core.Storage]int{}
	for e := uint64(1); e <= 4000; e++ {
		n := c.NodeFor(e)
		if n != c.NodeFor(e) {
			t.Fatal("routing not deterministic")
		}
		counts[n]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d nodes used", len(counts))
	}
	for n, cnt := range counts {
		if cnt < 500 || cnt > 1500 {
			t.Fatalf("node %p skewed: %d/4000", n, cnt)
		}
	}
}

func TestEventsLandOnOwningNode(t *testing.T) {
	c, nodes := newLocal(t, 3)
	const events = 300
	for i := 0; i < events; i++ {
		ev := event.Event{Caller: uint64(i%50) + 1, Timestamp: int64(i + 1), Duration: 10, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range nodes {
		total += n.Stats().EventsProcessed
	}
	if total != events {
		t.Fatalf("processed %d, want %d", total, events)
	}
	// Every entity is retrievable through the cluster Get.
	for e := uint64(1); e <= 50; e++ {
		rec, _, ok, err := c.Get(e)
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", e, ok, err)
		}
		if rec.EntityID() != e {
			t.Fatalf("Get(%d) returned entity %d", e, rec.EntityID())
		}
	}
}

func TestPutAndConditionalPutRouting(t *testing.T) {
	c, _ := newLocal(t, 3)
	sch := clusterSchema(t)
	for e := uint64(1); e <= 20; e++ {
		if err := c.Put(sch.NewRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	rec, v, ok, err := c.Get(7)
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if err := c.ConditionalPut(rec, v); err != nil {
		t.Fatalf("ConditionalPut: %v", err)
	}
	if err := c.ConditionalPut(rec, v); err == nil {
		t.Fatal("stale ConditionalPut succeeded across cluster routing")
	}
}

func TestClusterQueriesSeeAllNodes(t *testing.T) {
	c, _ := newLocal(t, 3)
	sch := clusterSchema(t)
	calls := sch.MustAttrIndex("calls_today_count")
	const events = 200
	for i := 0; i < events; i++ {
		ev := event.Event{Caller: uint64(i%40) + 1, Timestamp: 100*24*3600*1000 + int64(i), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	deadline := time.Now().Add(5 * time.Second)
	for {
		merged := query.NewPartial(q)
		for _, n := range c.Nodes() {
			p, err := n.SubmitQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			merged.Merge(p, q)
		}
		res := merged.Finalize(q)
		if len(res.Rows) > 0 && res.Rows[0].Values[0] == events {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged to %d calls", events)
		}
		time.Sleep(time.Millisecond)
	}
}
