package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
)

// TestReplaceNodeRacesLingerFlush is the -race regression for the
// ReplaceNode batch-buffer reset: a handle swap must move the node's
// in-flight coalescing buffer into the spill queue under the delivery lock,
// so racing a swap against the linger flusher neither loses nor duplicates
// buffered events.
func TestReplaceNodeRacesLingerFlush(t *testing.T) {
	sink := &flakyStorage{}
	c, err := NewWithOptions([]core.Storage{sink}, Options{
		Health: HealthConfig{RetryInterval: time.Millisecond},
		Batch:  BatchConfig{MaxEvents: 8, Linger: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const total = 4000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := c.ProcessEventAsync(event.Event{Caller: 1, Timestamp: int64(i + 1), Duration: 1}); err != nil {
				t.Errorf("event %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if err := c.ReplaceNode(0, sink); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()

	// FlushEvents drains the remaining buffer AND whatever ReplaceNode moved
	// to the spill queue; afterwards every event must have been delivered
	// exactly once.
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.delivered) != total {
		t.Fatalf("delivered %d events, want %d", len(sink.delivered), total)
	}
	seen := make(map[int64]bool, total)
	for _, ev := range sink.delivered {
		if seen[ev.Timestamp] {
			t.Fatalf("event %d delivered twice", ev.Timestamp)
		}
		seen[ev.Timestamp] = true
	}
}
