package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/rta"
	"repro/internal/schema"
)

// durableNode builds a storage node whose events are WAL-logged to its own
// archive under dir — the shape both a replication primary and a follower
// replica have.
func durableNode(t *testing.T, dir string) (*core.StorageNode, *archive.Archive) {
	t.Helper()
	arch, err := archive.Open(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.Config{
		Schema: clusterSchema(t), Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		arch.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Stop()
		arch.Close()
	})
	return node, arch
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func replEvent(i int) event.Event {
	return event.Event{Caller: uint64(i%10) + 1, Timestamp: int64(i + 1), Duration: int64(i), Cost: 1}
}

// startedFollower wires a follower tailing the primary's archive in process
// and attaches it to shard 0.
func startedFollower(t *testing.T, c *Cluster, fnode *core.StorageNode, parch *archive.Archive) *repl.Follower {
	t.Helper()
	f := repl.NewFollower(fnode, 0, repl.FollowerConfig{})
	if err := f.Start(repl.NewArchiveSource(parch, 0, repl.ArchiveSourceConfig{Heartbeat: 5 * time.Millisecond})); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	if err := c.AttachFollower(0, f); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFollowerServesFreshScans: a caught-up follower takes the shard's RTA
// scans off the primary, and the replica-served result matches what the
// primary would answer.
func TestFollowerServesFreshScans(t *testing.T) {
	pnode, parch := durableNode(t, t.TempDir())
	fnode, _ := durableNode(t, t.TempDir())
	c, err := New([]core.Storage{pnode})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := startedFollower(t, c, fnode, parch)

	const events = 400
	for i := 0; i < events; i++ {
		if err := c.ProcessEventAsync(replEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower catch-up", func() bool {
		return f.AppliedLSN() == uint64(events) && f.Lag() == 0
	})

	if _, info := c.Handle(0); !info.Replica {
		t.Fatalf("caught-up follower not picked for the scan: %+v", info)
	}

	coord, err := rta.NewCoordinatorBackends(c, rta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sch := clusterSchema(t)
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitFor(t, "replica-served query convergence", func() bool {
		res, err := coord.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.ReplicaShards != 1 {
			t.Fatalf("result not replica-served: %+v", res)
		}
		return len(res.Rows) > 0 && res.Rows[0].Values[0] == events
	})
}

// stubSource hand-feeds batches to a follower, for driving lag and
// staleness states deterministically.
type stubSource struct {
	ch   chan repl.Batch
	quit chan struct{}
}

func newStubSource() *stubSource {
	return &stubSource{ch: make(chan repl.Batch, 16), quit: make(chan struct{})}
}

func (s *stubSource) Next() (repl.Batch, error) {
	select {
	case b := <-s.ch:
		return b, nil
	case <-s.quit:
		return repl.Batch{}, repl.ErrSourceClosed
	}
}

func (s *stubSource) Close() error {
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	return nil
}

// TestLaggyFollowerFallsBackToPrimary: with a healthy primary, a follower
// past the freshness bound must not serve scans.
func TestLaggyFollowerFallsBackToPrimary(t *testing.T) {
	pnode, _ := durableNode(t, t.TempDir())
	fnode, _ := durableNode(t, t.TempDir())
	c, err := NewWithOptions([]core.Storage{pnode}, Options{
		Replicas: ReplicaConfig{MaxLagEvents: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f := repl.NewFollower(fnode, 0, repl.FollowerConfig{})
	src := newStubSource()
	src.ch <- repl.Batch{Frontier: 50_000, Origin: time.Now()} // heartbeat: way behind
	if err := f.Start(src); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	if err := c.AttachFollower(0, f); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lag observation", func() bool { return f.Lag() > 100 })

	h, info := c.Handle(0)
	if info.Replica {
		t.Fatalf("laggy follower served a scan (lag %d)", info.LagEvents)
	}
	if h != core.Storage(pnode) {
		t.Fatal("fallback handle is not the primary")
	}
}

// toggleStorage delegates to a real node until down is set — the in-process
// stand-in for a primary that dies while its WAL survives.
type toggleStorage struct {
	inner core.Storage
	down  atomic.Bool
}

func (s *toggleStorage) ProcessEventAsync(ev event.Event) error {
	if s.down.Load() {
		return errInjected
	}
	return s.inner.ProcessEventAsync(ev)
}

func (s *toggleStorage) ProcessEvent(ev event.Event) (int, error) {
	if s.down.Load() {
		return 0, errInjected
	}
	return s.inner.ProcessEvent(ev)
}

func (s *toggleStorage) FlushEvents() error {
	if s.down.Load() {
		return errInjected
	}
	return s.inner.FlushEvents()
}

func (s *toggleStorage) Get(entityID uint64) (schema.Record, uint64, bool, error) {
	if s.down.Load() {
		return nil, 0, false, errInjected
	}
	return s.inner.Get(entityID)
}

func (s *toggleStorage) Put(rec schema.Record) error {
	if s.down.Load() {
		return errInjected
	}
	return s.inner.Put(rec)
}

func (s *toggleStorage) ConditionalPut(rec schema.Record, expected uint64) error {
	if s.down.Load() {
		return errInjected
	}
	return s.inner.ConditionalPut(rec, expected)
}

func (s *toggleStorage) SubmitQueryAsync(q *query.Query) (<-chan core.QueryResponse, error) {
	if s.down.Load() {
		return nil, errInjected
	}
	return s.inner.SubmitQueryAsync(q)
}

func (s *toggleStorage) SubmitQuery(q *query.Query) (*query.Partial, error) {
	if s.down.Load() {
		return nil, errInjected
	}
	return s.inner.SubmitQuery(q)
}

// TestStaleFollowerServesDuringOutage: once the primary's breaker opens,
// the freshness bound is waived and the most-caught-up follower answers.
func TestStaleFollowerServesDuringOutage(t *testing.T) {
	pnode, _ := durableNode(t, t.TempDir())
	fnode, _ := durableNode(t, t.TempDir())
	wrap := &toggleStorage{inner: pnode}
	c, err := NewWithOptions([]core.Storage{wrap}, Options{
		Health:   HealthConfig{FailureThreshold: 2, ProbeInterval: time.Minute},
		Replicas: ReplicaConfig{MaxLagEvents: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hand-fed follower: 50 events applied, then a frontier far ahead, so
	// its lag is pinned past the bound.
	f := repl.NewFollower(fnode, 0, repl.FollowerConfig{})
	src := newStubSource()
	evs := make([]event.Event, 50)
	for i := range evs {
		evs[i] = replEvent(i)
	}
	src.ch <- repl.Batch{FirstLSN: 0, Frontier: 50, Origin: time.Now(), Events: evs}
	src.ch <- repl.Batch{FirstLSN: 50, Frontier: 150, Origin: time.Now()}
	if err := f.Start(src); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	if err := c.AttachFollower(0, f); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lag past the bound", func() bool {
		return f.AppliedLSN() == 50 && f.Lag() > 10
	})
	if _, info := c.Handle(0); info.Replica {
		t.Fatal("follower past the bound served with a healthy primary")
	}

	// Kill the primary; its breaker opens on the failing sends.
	wrap.down.Store(true)
	for i := 0; i < 5; i++ {
		_ = c.ProcessEventAsync(replEvent(1000 + i))
	}
	waitFor(t, "breaker open", func() bool { return c.Health(0).State == BreakerOpen })
	_, info := c.Handle(0)
	if !info.Replica {
		t.Fatal("stale follower refused the scan during the outage")
	}
	if info.LagEvents == 0 {
		t.Fatal("stale pick should report its lag")
	}
}

// TestPromoteAtWatermarkEquivalence is the zero-loss promotion check: a
// follower sealed mid-stream and topped up from the primary's surviving WAL
// must end with (a) a WAL identical to the primary's, LSN for LSN, and (b)
// a matrix identical to a synchronous replay oracle of that WAL.
func TestPromoteAtWatermarkEquivalence(t *testing.T) {
	pnode, parch := durableNode(t, t.TempDir())
	fnode, farch := durableNode(t, t.TempDir())
	c, err := NewWithOptions([]core.Storage{pnode}, Options{
		Replicas: ReplicaConfig{
			ReplayTail: func(_ int, from uint64, emit func([]event.Event) error) error {
				return repl.ReplayArchiveTail(parch, from, 64, emit)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := startedFollower(t, c, fnode, parch)

	const head, tail = 300, 120
	for i := 0; i < head; i++ {
		if err := c.ProcessEventAsync(replEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "head catch-up", func() bool { return f.AppliedLSN() == head })
	// Freeze the follower's watermark, then keep the primary going — these
	// tail events are durably acked on the primary but never shipped.
	f.Stop()
	for i := head; i < head+tail; i++ {
		if err := c.ProcessEventAsync(replEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}

	sealed, err := c.Promote(0)
	if err != nil {
		t.Fatal(err)
	}
	if sealed != head {
		t.Fatalf("sealed at %d, want watermark %d", sealed, head)
	}
	if c.Promotions() != 1 {
		t.Fatalf("promotions = %d", c.Promotions())
	}
	if got := c.Nodes()[0]; got != core.Storage(fnode) {
		t.Fatal("ingest not re-pointed at the promoted follower")
	}
	if len(c.Followers(0)) != 0 {
		t.Fatal("promoted follower still listed as a follower")
	}

	// (a) WAL equivalence: the promoted node's own archive carries exactly
	// the primary's log — zero acknowledged events lost, none duplicated,
	// in order.
	if got, want := farch.NextLSN(), parch.NextLSN(); got != want {
		t.Fatalf("promoted WAL frontier %d, primary %d", got, want)
	}
	want := make(map[uint64]event.Event)
	if err := parch.Replay(0, func(lsn uint64, ev event.Event) error {
		want[lsn] = ev
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	n := 0
	err = farch.Replay(0, func(lsn uint64, ev event.Event) error {
		if ev != want[lsn] {
			t.Fatalf("lsn %d: promoted WAL %+v, primary %+v", lsn, ev, want[lsn])
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != head+tail {
		t.Fatalf("promoted WAL has %d events, want %d", n, head+tail)
	}

	// (b) Matrix equivalence against a synchronous replay oracle.
	oracle, err := core.NewNode(core.Config{
		Schema: clusterSchema(t), Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Stop()
	if err := parch.Replay(0, func(_ uint64, ev event.Event) error {
		return oracle.ProcessEventAsync(ev)
	}); err != nil {
		t.Fatal(err)
	}
	if err := oracle.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if err := fnode.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	sch := clusterSchema(t)
	for e := uint64(1); e <= 10; e++ {
		got, _, gok, err := fnode.Get(e)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, rok, err := oracle.Get(e)
		if err != nil {
			t.Fatal(err)
		}
		if gok != rok {
			t.Fatalf("entity %d: promoted present=%v oracle=%v", e, gok, rok)
		}
		if !gok {
			continue
		}
		for s := 0; s < sch.Slots; s++ {
			if s == sch.VersionSlot {
				continue
			}
			if got[s] != ref[s] {
				t.Fatalf("entity %d slot %d: promoted %#x, oracle %#x", e, s, got[s], ref[s])
			}
		}
	}
}

// TestAutoPromoteFailoverPreservesAckedEvents: when the primary dies under
// live ingest, the monitor promotes the follower, the surviving WAL tops it
// up, and the outage's spilled events replay onto it — nothing acked is
// lost.
func TestAutoPromoteFailoverPreservesAckedEvents(t *testing.T) {
	pnode, parch := durableNode(t, t.TempDir())
	fnode, _ := durableNode(t, t.TempDir())
	wrap := &toggleStorage{inner: pnode}
	var promotedShard atomic.Int64
	promotedShard.Store(-1)
	c, err := NewWithOptions([]core.Storage{wrap}, Options{
		Health: HealthConfig{FailureThreshold: 2, ProbeInterval: time.Minute, RetryInterval: 2 * time.Millisecond},
		Replicas: ReplicaConfig{
			AutoPromote:   true,
			PromoteAfter:  30 * time.Millisecond,
			CheckInterval: 5 * time.Millisecond,
			ReplayTail: func(_ int, from uint64, emit func([]event.Event) error) error {
				return repl.ReplayArchiveTail(parch, from, 64, emit)
			},
			OnPromote: func(shard int, _ uint64) { promotedShard.Store(int64(shard)) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := startedFollower(t, c, fnode, parch)

	const acked = 200
	for i := 0; i < acked; i++ {
		if err := c.ProcessEventAsync(replEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "catch-up", func() bool { return f.AppliedLSN() == acked })

	// Primary dies; ingest keeps going and spills.
	wrap.down.Store(true)
	const inflight = 40
	for i := 0; i < inflight; i++ {
		if err := c.ProcessEventAsync(replEvent(acked + i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "auto-promotion", func() bool { return c.Promotions() == 1 })
	if promotedShard.Load() != 0 {
		t.Fatalf("OnPromote shard = %d", promotedShard.Load())
	}
	if got := c.Nodes()[0]; got != core.Storage(fnode) {
		t.Fatal("ingest not re-pointed at the promoted follower")
	}

	// The spill queue replays onto the promoted node; everything lands.
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := fnode.Stats().EventsProcessed; got != acked+inflight {
		t.Fatalf("promoted node processed %d events, want %d", got, acked+inflight)
	}
}
