package cluster

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/event"
)

// BatchConfig enables client-side event coalescing in the cluster router:
// instead of one delivery per ProcessEventAsync call, events accumulate in a
// per-node buffer and go out as one ProcessEventBatch (or N ProcessEventAsync
// calls against handles without batch support) when the buffer fills or the
// linger expires. Batching changes when delivery errors are observed — a
// buffered event's failure surfaces at flush time, where it spills to the
// node's retry queue exactly like a failed per-event send — but not whether:
// no event is dropped that the per-event path would have delivered. With
// health tracking disabled there is no spill queue; undelivered events stay
// requeued in the coalescing buffer and are retried by later flushes, so the
// buffer can grow past MaxEvents while the node is down.
type BatchConfig struct {
	// MaxEvents is the per-node buffer size that forces a flush. 0 disables
	// batching (the default, per-event routing); -1 selects
	// DefaultMaxEvents; 1 is equivalent to 0.
	MaxEvents int
	// Linger bounds how long a non-full buffer may hold events (default
	// 1ms; negative disables timed flushes, leaving only size-triggered and
	// ordering flushes).
	Linger time.Duration
}

// DefaultMaxEvents is the per-node buffer bound selected by MaxEvents: -1.
const DefaultMaxEvents = 256

// DefaultLinger is the flush interval selected when Linger is zero.
const DefaultLinger = time.Millisecond

func (cfg BatchConfig) withDefaults() BatchConfig {
	if cfg.MaxEvents < 0 {
		cfg.MaxEvents = DefaultMaxEvents
	} else if cfg.MaxEvents == 1 {
		cfg.MaxEvents = 0
	}
	if cfg.Linger == 0 {
		cfg.Linger = DefaultLinger
	} else if cfg.Linger < 0 {
		cfg.Linger = 0
	}
	return cfg
}

// nodeBatch is the coalescing buffer for one storage server.
type nodeBatch struct {
	// sendMu serializes swap-and-deliver for this node: it is taken before
	// mu and held across the delivery, so batches reach the node in buffer
	// order. Without it a linger flush holding an older batch could be
	// descheduled (or block on a TCP send) and land after a newer
	// size-triggered batch, reordering same-caller events.
	sendMu sync.Mutex
	mu     sync.Mutex
	buf    []event.Event
}

// take swaps the buffer out under the lock.
func (b *nodeBatch) take() []event.Event {
	b.mu.Lock()
	evs := b.buf
	b.buf = nil
	b.mu.Unlock()
	return evs
}

// requeueFront puts an undelivered suffix back at the head of the buffer,
// ahead of anything buffered while the delivery was in flight, so the next
// flush replays the stream in its original order. evs' backing array is the
// swapped-out batch, owned exclusively by the failed delivery.
func (b *nodeBatch) requeueFront(evs []event.Event) {
	if len(evs) == 0 {
		return
	}
	b.mu.Lock()
	b.buf = append(evs, b.buf...)
	b.mu.Unlock()
}

// bufferEvent appends ev to its node's coalescing buffer, flushing when the
// buffer reaches the configured bound. Buffered events always succeed from
// the caller's perspective — failures surface at flush time, where they take
// the spill path (or, with health tracking disabled, stay requeued in the
// buffer for the next flush), matching the per-event fire-and-forget
// contract.
func (c *Cluster) bufferEvent(idx int, ev event.Event) error {
	b := c.batches[idx]
	b.mu.Lock()
	b.buf = append(b.buf, ev)
	full := len(b.buf) >= c.bcfg.MaxEvents
	b.mu.Unlock()
	if full {
		_ = c.flushBatch(idx)
	}
	return nil
}

// flushBatch drains node idx's coalescing buffer now. Used by size-triggered
// flushes, by the linger loop, by synchronous operations that need routing
// order (a buffered event must land before a Get/Put on the same node
// observes state), and by Close. sendMu is held across take + deliver so
// concurrent flushes cannot deliver batches out of buffer order.
func (c *Cluster) flushBatch(idx int) error {
	b := c.batches[idx]
	b.sendMu.Lock()
	defer b.sendMu.Unlock()
	return c.deliverBatch(idx, b.take())
}

// deliverBatch sends one batch to its node through the health machinery:
// breaker-open or failed deliveries spill the undelivered suffix to the
// node's retry queue (the delivered prefix is never requeued, so no event is
// applied twice by this path). With health tracking disabled there is no
// spill queue: the undelivered suffix goes back to the head of the node's
// coalescing buffer (buffered events already reported success to their
// callers and must not be dropped) and the error is returned so synchronous
// flush triggers can observe it. A spill shortfall (full queue under
// SpillReject, or spilling disabled) likewise requeues the leftover suffix
// into the coalescing buffer when one exists and returns a typed error —
// never a silent drop; without a buffer the error reports the accepted
// prefix via core.PartialBatchError so the caller can resubmit the rest.
func (c *Cluster) deliverBatch(idx int, evs []event.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if c.disabled() {
		delivered, err := core.ProcessBatch(c.node(idx), evs)
		if err != nil && c.batches != nil {
			c.batches[idx].requeueFront(evs[delivered:])
		}
		return err
	}
	h := c.health[idx]
	if !h.allow(time.Now()) {
		return c.spillTail(idx, evs, 0)
	}
	delivered, err := core.ProcessBatch(c.node(idx), evs)
	h.record(err, c.hcfg.FailureThreshold, c.hcfg.ProbeInterval)
	if err != nil {
		return c.spillTail(idx, evs, delivered)
	}
	return nil
}

// spillTail spills evs[delivered:] and accounts for any shortfall: with a
// coalescing buffer the unspilled leftover goes back to the buffer head
// (order-preserving, zero loss) and the typed spill error is returned so
// flush-time callers observe the rejection; without a buffer the error
// wraps the total accepted prefix in a core.PartialBatchError.
func (c *Cluster) spillTail(idx int, evs []event.Event, delivered int) error {
	spilled, err := c.spillBatch(idx, evs[delivered:])
	if err == nil {
		return nil
	}
	rest := evs[delivered+spilled:]
	if c.batches != nil {
		c.batches[idx].requeueFront(rest)
		return err
	}
	return &core.PartialBatchError{Applied: delivered + spilled, Err: err}
}

// spillBatch queues undelivered events for background replay, returning how
// many were accepted. Under SpillDropOldest overflow evicts the oldest
// queued events (counted in NodeHealth.Dropped) and everything is accepted;
// under SpillBlock overflow waits for the drainer to make room. Under
// SpillReject — or with the queue disabled — events that do not fit are NOT
// accepted: the caller gets a typed error and owns the unaccepted suffix.
func (c *Cluster) spillBatch(idx int, evs []event.Event) (int, error) {
	h := c.health[idx]
	for i, ev := range evs {
		if h.spill(ev, c.hcfg.RetryQueue, c.hcfg.SpillPolicy) {
			c.startDrainer()
			continue
		}
		if c.hcfg.RetryQueue < 0 {
			return i, &NodeDownError{Node: idx, Err: c.lastErr(idx)}
		}
		if c.hcfg.SpillPolicy == SpillBlock && c.spillWait(idx, ev) {
			continue
		}
		return i, c.spillRejection(idx)
	}
	return len(evs), nil
}

// startLinger launches the background loop that flushes non-empty buffers
// every Linger interval, bounding how stale a buffered event can get on a
// quiet stream.
func (c *Cluster) startLinger() {
	if c.bcfg.Linger <= 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(c.bcfg.Linger)
		defer tick.Stop()
		for {
			select {
			case <-c.quit:
				return
			case <-tick.C:
				for idx := range c.batches {
					_ = c.flushBatch(idx)
				}
			}
		}
	}()
}

// ProcessEventBatch routes a batch of events to their owning servers. With
// coalescing enabled the events join the per-node buffers; otherwise they
// are bucketed by owner (preserving per-caller order) and delivered as one
// batch per touched node.
func (c *Cluster) ProcessEventBatch(evs []event.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if c.batches != nil {
		for _, ev := range evs {
			if err := c.bufferEvent(c.indexFor(ev.Caller), ev); err != nil {
				return err
			}
		}
		return nil
	}
	if len(c.nodes) == 1 {
		return c.deliverBatch(0, evs)
	}
	buckets := make([][]event.Event, len(c.nodes))
	for _, ev := range evs {
		idx := c.indexFor(ev.Caller)
		buckets[idx] = append(buckets[idx], ev)
	}
	var firstErr error
	for idx, bucket := range buckets {
		if err := c.deliverBatch(idx, bucket); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
