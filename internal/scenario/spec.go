// Package scenario is the declarative layer of the benchmark observatory:
// workload scenarios described as data (entity population and skew, event
// rate with burst/diurnal envelopes, rule storms, reconnect churn, ingest
// batch mixes, RTA query concurrency, replica toggles), schema-versioned
// result files with an environment fingerprint and multi-trial median+MAD
// statistics, and a compare mode that diffs a fresh run against the recorded
// baseline for the host and fails on regression beyond a per-metric noise
// band.
//
// The package is deliberately free of the execution machinery — it only
// knows shapes, files and math. internal/bench executes specs against the
// core/cluster/repl stack and cmd/aimbench is the CLI
// (record/compare/promote); this split keeps the result schema importable
// from tests and tools without dragging the whole system in.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms") so specs and result files stay hand-editable.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts both "250ms" strings and raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// D unwraps to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// Phase is one measured segment of a scenario. Phases run back to back
// inside every trial; the rate/client factors shape the load envelope
// (diurnal valleys, bursts) without restarting the system.
type Phase struct {
	Name string `json:"name"`
	// Duration is this phase's share of the measurement window.
	Duration Duration `json:"duration"`
	// RateFactor scales Spec.EventRate for this phase (0 = 1.0). A diurnal
	// envelope is a list of phases with factors like 0.3, 1.0, 0.3; a burst
	// is a short phase with a factor like 5.
	RateFactor float64 `json:"rate_factor,omitempty"`
	// ClientFactor scales Spec.Clients for this phase (0 = 1.0), rounding
	// up so a nonzero client count never drops to zero.
	ClientFactor float64 `json:"client_factor,omitempty"`
	// ReconnectEvery, when positive, tears every RTA client down and builds
	// it back up at this period — the reconnect-storm knob.
	ReconnectEvery Duration `json:"reconnect_every,omitempty"`
}

// Spec declares one load scenario. The zero value is not runnable; use a
// builtin (Lookup), load a JSON file (LoadFile), or fill the fields and call
// Validate.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Population / system shape.
	Entities   uint64 `json:"entities"`
	Rules      int    `json:"rules"`
	FullSchema bool   `json:"full_schema,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	ESPThreads int    `json:"esp_threads,omitempty"`
	BucketSize int    `json:"bucket_size,omitempty"`
	MaxBatch   int    `json:"max_batch,omitempty"`
	Seed       int64  `json:"seed,omitempty"`

	// Load shape.
	EventRate float64 `json:"event_rate"`
	Clients   int     `json:"clients"`
	// HotKeyFraction routes this fraction of events into a hot set of
	// HotKeySetSize entities (0 disables). ZipfS > 1 instead draws callers
	// from a Zipf distribution with that exponent; the two are exclusive,
	// Zipf wins.
	HotKeyFraction float64 `json:"hot_key_fraction,omitempty"`
	HotKeySetSize  uint64  `json:"hot_key_set_size,omitempty"`
	ZipfS          float64 `json:"zipf_s,omitempty"`
	// IngestBatchMix splits the event rate over one concurrent driver per
	// entry, each pacing in groups of that size — a mix of arrival
	// granularities. Empty means one driver at the default pacing.
	IngestBatchMix []int `json:"ingest_batch_mix,omitempty"`
	// Replicas attaches this many WAL-tailing follower replicas to the
	// (single) primary; their lag/staleness series land in the result.
	Replicas int `json:"replicas,omitempty"`

	// Overload protection. OverloadProtect enables storage-node admission
	// control (typed reject-with-retry-after instead of blocking); the
	// remaining knobs tune it, zero selecting the core defaults. A nonzero
	// QueryDeadline stamps every RTA query with that budget and switches
	// the coordinator to degraded gather, so shed partials surface as
	// incomplete results rather than hard failures.
	OverloadProtect   bool     `json:"overload_protect,omitempty"`
	ESPQueueLen       int      `json:"esp_queue_len,omitempty"`
	DeltaSoftRecords  int      `json:"delta_soft_records,omitempty"`
	DeltaHardRecords  int      `json:"delta_hard_records,omitempty"`
	MaxPendingQueries int      `json:"max_pending_queries,omitempty"`
	QueryDeadline     Duration `json:"query_deadline,omitempty"`

	// Tiered main. TierFreeze enables the ColumnMap compressed cold tier:
	// full buckets untouched for TierColdAfter merge epochs freeze into
	// immutable compressed chunks that scans evaluate in place, and a delta
	// write thaws its bucket back hot. TierColdAfter 0 is the aggressive
	// policy (freeze anything a single epoch old) — maximal freeze/thaw
	// churn under live load, which is the property the scenario gates.
	TierFreeze    bool `json:"tier_freeze,omitempty"`
	TierColdAfter int  `json:"tier_cold_after,omitempty"`

	// Measurement protocol.
	Warmup Duration `json:"warmup"`
	Trials int      `json:"trials"`
	Phases []Phase  `json:"phases"`
}

// Validate fills defaults and rejects nonsense. It mutates the receiver.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if s.Entities == 0 {
		return fmt.Errorf("scenario %s: entities must be positive", s.Name)
	}
	if s.EventRate < 0 || s.Clients < 0 || s.Replicas < 0 {
		return fmt.Errorf("scenario %s: negative load knob", s.Name)
	}
	if s.Trials <= 0 {
		s.Trials = 3
	}
	if s.Warmup <= 0 {
		s.Warmup = Duration(300 * time.Millisecond)
	}
	if len(s.Phases) == 0 {
		s.Phases = []Phase{{Name: "steady", Duration: Duration(time.Second)}}
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Duration <= 0 {
			return fmt.Errorf("scenario %s: phase %d (%s) needs a positive duration", s.Name, i, p.Name)
		}
		if p.RateFactor < 0 || p.ClientFactor < 0 {
			return fmt.Errorf("scenario %s: phase %d (%s): negative factor", s.Name, i, p.Name)
		}
		if p.RateFactor == 0 {
			p.RateFactor = 1
		}
		if p.ClientFactor == 0 {
			p.ClientFactor = 1
		}
	}
	if s.HotKeyFraction < 0 || s.HotKeyFraction > 1 {
		return fmt.Errorf("scenario %s: hot_key_fraction must be in [0,1]", s.Name)
	}
	if s.HotKeyFraction > 0 && s.HotKeySetSize == 0 {
		s.HotKeySetSize = s.Entities / 100
		if s.HotKeySetSize == 0 {
			s.HotKeySetSize = 1
		}
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("scenario %s: zipf_s must be > 1", s.Name)
	}
	for _, b := range s.IngestBatchMix {
		if b <= 0 {
			return fmt.Errorf("scenario %s: ingest_batch_mix entries must be positive", s.Name)
		}
	}
	if s.Replicas > 0 && s.FullSchema {
		return fmt.Errorf("scenario %s: replicas currently require the compact schema", s.Name)
	}
	if s.ESPQueueLen < 0 || s.DeltaSoftRecords < 0 || s.DeltaHardRecords < 0 ||
		s.MaxPendingQueries < 0 || s.QueryDeadline < 0 {
		return fmt.Errorf("scenario %s: negative overload knob", s.Name)
	}
	if s.DeltaSoftRecords > 0 && s.DeltaHardRecords > 0 && s.DeltaHardRecords < s.DeltaSoftRecords {
		return fmt.Errorf("scenario %s: delta_hard_records below delta_soft_records", s.Name)
	}
	if s.TierColdAfter < 0 {
		return fmt.Errorf("scenario %s: tier_cold_after must be >= 0", s.Name)
	}
	if s.TierColdAfter > 0 && !s.TierFreeze {
		return fmt.Errorf("scenario %s: tier_cold_after needs tier_freeze", s.Name)
	}
	return nil
}

// MeasuredWindow is the per-trial measurement duration (the phase sum).
func (s *Spec) MeasuredWindow() time.Duration {
	var total time.Duration
	for _, p := range s.Phases {
		total += p.Duration.D()
	}
	return total
}

// LoadFile reads and validates a JSON spec.
func LoadFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
