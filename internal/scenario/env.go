package scenario

import (
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/obs"
)

// CaptureEnv fingerprints the current machine and build. The fingerprint is
// the directory key under benchmarks/results/ and benchmarks/baselines/ —
// results recorded under different fingerprints are different machines and
// must not gate each other (except through an explicit override like the
// checked-in "ci" baseline, which pairs with a wide noise band).
func CaptureEnv() Env {
	cpu := cpuModel()
	e := Env{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpu,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  obs.GoVersion(),
		GitSHA:     obs.GitSHA(),
	}
	e.Fingerprint = fmt.Sprintf("%s-%s-%s-c%d-p%d",
		e.GOOS, e.GOARCH, slug(cpu), e.NumCPU, e.GOMAXPROCS)
	return e
}

// cpuModel best-effort reads the CPU model name (linux /proc/cpuinfo;
// "unknown-cpu" elsewhere — the goos/goarch/core-count parts of the
// fingerprint still separate machines).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown-cpu"
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return "unknown-cpu"
}

// slug flattens free text into a filesystem- and URL-safe token:
// "Intel(R) Xeon(R) Processor @ 2.10GHz" -> "intel-r-xeon-r-processor-2-10ghz".
func slug(s string) string {
	var b strings.Builder
	dash := true // swallow leading separators
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
