package scenario

import "time"

// ms is a literal-friendly Duration constructor for the builtin table.
func msec(n int) Duration { return Duration(time.Duration(n) * time.Millisecond) }

// Builtins returns the named scenario library, freshly validated copies so
// callers can tweak trial counts without aliasing. The set mirrors the
// paper's §6 evaluation matrix plus the failure-shape scenarios the cluster
// layer grew in PRs 2–7.
func Builtins() []*Spec {
	specs := []*Spec{
		{
			Name:        "smoke",
			Description: "CI gate: small steady mixed load, short window, wide-band comparable",
			Entities:    4_000,
			Rules:       50,
			BucketSize:  1024,
			EventRate:   4_000,
			Clients:     2,
			Warmup:      msec(200),
			Trials:      2,
			Phases:      []Phase{{Name: "steady", Duration: msec(500)}},
		},
		{
			Name:        "steady",
			Description: "baseline mixed load: uniform callers, flat rate, Q1-Q7 client mix",
			Entities:    20_000,
			Rules:       100,
			EventRate:   10_000,
			Clients:     4,
			Warmup:      msec(400),
			Trials:      3,
			Phases:      []Phase{{Name: "steady", Duration: msec(1200)}},
		},
		{
			Name:           "hotkey",
			Description:    "skewed ingest: 60% of events hit a 1% hot entity set (caller-coalescing stressor)",
			Entities:       20_000,
			Rules:          100,
			EventRate:      10_000,
			Clients:        4,
			HotKeyFraction: 0.6,
			HotKeySetSize:  200,
			Warmup:         msec(400),
			Trials:         3,
			Phases:         []Phase{{Name: "steady", Duration: msec(1200)}},
		},
		{
			Name:        "zipf",
			Description: "Zipf(1.2) caller skew over the full population",
			Entities:    20_000,
			Rules:       100,
			EventRate:   10_000,
			Clients:     4,
			ZipfS:       1.2,
			Warmup:      msec(400),
			Trials:      3,
			Phases:      []Phase{{Name: "steady", Duration: msec(1200)}},
		},
		{
			Name:        "diurnal",
			Description: "diurnal envelope: valley / peak / valley rate factors in one window",
			Entities:    20_000,
			Rules:       100,
			EventRate:   10_000,
			Clients:     4,
			Warmup:      msec(400),
			Trials:      3,
			Phases: []Phase{
				{Name: "valley", Duration: msec(400), RateFactor: 0.3},
				{Name: "peak", Duration: msec(600), RateFactor: 1.0},
				{Name: "valley2", Duration: msec(400), RateFactor: 0.3},
			},
		},
		{
			Name:        "burst",
			Description: "burst envelope: steady load with a 4x ingest spike mid-window",
			Entities:    20_000,
			Rules:       100,
			EventRate:   8_000,
			Clients:     4,
			Warmup:      msec(400),
			Trials:      3,
			Phases: []Phase{
				{Name: "steady", Duration: msec(500)},
				{Name: "burst", Duration: msec(300), RateFactor: 4},
				{Name: "recover", Duration: msec(500)},
			},
		},
		{
			Name:        "rulestorm",
			Description: "rule storm: full 300-rule set evaluated on every event",
			Entities:    20_000,
			Rules:       300,
			EventRate:   8_000,
			Clients:     4,
			Warmup:      msec(400),
			Trials:      3,
			Phases:      []Phase{{Name: "steady", Duration: msec(1200)}},
		},
		{
			Name:        "reconnect-storm",
			Description: "RTA client churn: every client reconnects every 150ms through the middle phase",
			Entities:    20_000,
			Rules:       100,
			EventRate:   8_000,
			Clients:     6,
			Warmup:      msec(400),
			Trials:      3,
			Phases: []Phase{
				{Name: "steady", Duration: msec(400)},
				{Name: "storm", Duration: msec(600), ReconnectEvery: msec(150)},
				{Name: "recover", Duration: msec(400)},
			},
		},
		{
			Name:           "batchmix",
			Description:    "ingest arrival-granularity mix: concurrent drivers pacing at 1/16/256-event groups",
			Entities:       20_000,
			Rules:          100,
			EventRate:      10_000,
			Clients:        4,
			IngestBatchMix: []int{1, 16, 256},
			Warmup:         msec(400),
			Trials:         3,
			Phases:         []Phase{{Name: "steady", Duration: msec(1200)}},
		},
		{
			Name:        "overload",
			Description: "overload drill: ingest driven far past capacity with admission control on; proves typed shedding, zero silent loss, bounded delta, recovery",
			Entities:    10_000,
			Rules:       100,
			Partitions:  2,
			ESPThreads:  1,
			EventRate:   8_000,
			Clients:     4,
			Warmup:      msec(300),
			Trials:      2,
			Phases: []Phase{
				{Name: "steady", Duration: msec(300)},
				{Name: "overload", Duration: msec(500), RateFactor: 12},
				{Name: "recover", Duration: msec(400), RateFactor: 0.3},
			},
			OverloadProtect:   true,
			ESPQueueLen:       512,
			DeltaSoftRecords:  2_000,
			DeltaHardRecords:  8_000,
			MaxPendingQueries: 4,
			QueryDeadline:     msec(8),
		},
		{
			Name:        "tiered",
			Description: "tiered main gate: hot-key ingest over a mostly-cold compressed matrix, then a trickle phase where clients scan frozen chunks; gates freeze/thaw churn and the cold-scan penalty",
			Entities:    8_000,
			Rules:       50,
			// Fixed partition count so the per-partition population (and thus
			// the bucket fill / freeze pattern) is host-independent.
			Partitions:     2,
			BucketSize:     256,
			EventRate:      6_000,
			Clients:        2,
			HotKeyFraction: 0.8,
			HotKeySetSize:  400,
			TierFreeze:     true,
			TierColdAfter:  2,
			Warmup:         msec(300),
			// 3 trials (the other CI gate scenarios use 2): the latency
			// quantiles here straddle hot and compressed scans, so their
			// spread is real; the extra trial feeds it into the MAD band.
			Trials:         3,
			Phases: []Phase{
				// churn: the hot set keeps a couple of buckets warm while the
				// uniform remainder trickles freeze/thaw transitions.
				{Name: "churn", Duration: msec(500)},
				// coldscan: near-zero ingest lets the matrix freeze out while
				// the clients keep scanning — the compressed-scan penalty
				// lands in this half of the window's latency quantiles.
				{Name: "coldscan", Duration: msec(500), RateFactor: 0.05},
			},
		},
		{
			Name:        "replica",
			Description: "WAL-shipped follower attached to the primary; lag/staleness recorded under mixed load",
			Entities:    10_000,
			Rules:       50,
			EventRate:   8_000,
			Clients:     4,
			Replicas:    1,
			Warmup:      msec(400),
			Trials:      3,
			Phases:      []Phase{{Name: "steady", Duration: msec(1200)}},
		},
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			panic("scenario: bad builtin " + s.Name + ": " + err.Error())
		}
	}
	return specs
}

// Lookup returns the builtin spec with the given name, or nil.
func Lookup(name string) *Spec {
	for _, s := range Builtins() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
