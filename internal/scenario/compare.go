package scenario

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// NoiseFloor is the minimum relative noise band (fraction of the
	// baseline median) every metric is granted regardless of how tight its
	// recorded trial spread was. Default 0.25 — a 1-core VM under other
	// tenants never measures tighter than that. CI compares against a
	// checked-in baseline use a much wider floor (see make bench-check).
	NoiseFloor float64
	// BandMADs scales the trial-spread term: the band is
	// max(NoiseFloor, BandMADs * MAD / |median|). Default 5 (MAD
	// understates a normal sigma by ~1.48x, and three trials understate the
	// tails further; 5 MADs is roughly a 3-sigma band).
	BandMADs float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.NoiseFloor <= 0 {
		o.NoiseFloor = 0.25
	}
	if o.BandMADs <= 0 {
		o.BandMADs = 5
	}
	return o
}

// Delta is one metric's baseline-vs-current comparison.
type Delta struct {
	Name      string  `json:"name"`
	Unit      string  `json:"unit"`
	Direction string  `json:"direction"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	// Change is the signed relative move (current-baseline)/|baseline|;
	// NaN when the baseline median is zero (the absolute rule applied).
	Change float64 `json:"change"`
	// Band is the relative noise band granted to this metric.
	Band       float64 `json:"band"`
	Regression bool    `json:"regression"`
	Improved   bool    `json:"improved"`
	// MissingFrom marks metrics present on only one side ("baseline" or
	// "current"); such metrics never gate but are reported.
	MissingFrom string `json:"missing_from,omitempty"`
}

// Report is the outcome of one Compare.
type Report struct {
	Scenario            string
	BaselineFingerprint string
	CurrentFingerprint  string
	BaselineRecordedAt  string
	Options             CompareOptions
	Deltas              []Delta
	Regressions         int
	Improvements        int
}

// Compare diffs current against baseline metric by metric. A metric
// regresses when its median moved in the worse direction by more than its
// noise band — max(NoiseFloor, BandMADs·MAD/median), MAD taken from the
// baseline's recorded trial spread, so noisy metrics earn wide bands and
// stable ones stay tight. Metrics with a zero baseline median (e.g. error
// counts) use the absolute rule: any worse-direction move beyond
// BandMADs·MAD flags.
func Compare(baseline, current *Result, opts CompareOptions) (*Report, error) {
	if err := baseline.CheckVersion(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := current.CheckVersion(); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if baseline.Scenario != current.Scenario {
		return nil, fmt.Errorf("scenario: comparing %q against baseline for %q", current.Scenario, baseline.Scenario)
	}
	o := opts.withDefaults()
	rep := &Report{
		Scenario:            current.Scenario,
		BaselineFingerprint: baseline.Env.Fingerprint,
		CurrentFingerprint:  current.Env.Fingerprint,
		BaselineRecordedAt:  baseline.RecordedAt,
		Options:             o,
	}

	names := make([]string, 0, len(baseline.Metrics)+len(current.Metrics))
	seen := make(map[string]bool)
	for n := range baseline.Metrics {
		names = append(names, n)
		seen[n] = true
	}
	for n := range current.Metrics {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		b, inB := baseline.Metrics[name]
		c, inC := current.Metrics[name]
		switch {
		case !inB:
			rep.Deltas = append(rep.Deltas, Delta{Name: name, Unit: c.Unit, Direction: c.Direction,
				Current: c.Median, Change: math.NaN(), MissingFrom: "baseline"})
			continue
		case !inC:
			rep.Deltas = append(rep.Deltas, Delta{Name: name, Unit: b.Unit, Direction: b.Direction,
				Baseline: b.Median, Change: math.NaN(), MissingFrom: "current"})
			continue
		}
		d := Delta{Name: name, Unit: b.Unit, Direction: b.Direction,
			Baseline: b.Median, Current: c.Median}
		worse := (d.Direction == HigherIsBetter && d.Current < d.Baseline) ||
			(d.Direction == LowerIsBetter && d.Current > d.Baseline)
		better := d.Current != d.Baseline && !worse
		if math.Abs(d.Baseline) > 1e-12 {
			d.Change = (d.Current - d.Baseline) / math.Abs(d.Baseline)
			d.Band = math.Max(o.NoiseFloor, o.BandMADs*b.MAD/math.Abs(d.Baseline))
			if worse && math.Abs(d.Change) > d.Band {
				d.Regression = true
			}
			if better && math.Abs(d.Change) > d.Band {
				d.Improved = true
			}
		} else {
			// Zero baseline: relative change is undefined; apply the
			// absolute spread rule.
			d.Change = math.NaN()
			if worse && math.Abs(d.Current-d.Baseline) > o.BandMADs*b.MAD {
				d.Regression = true
			}
			d.Improved = better
		}
		if d.Regression {
			rep.Regressions++
		}
		if d.Improved {
			rep.Improvements++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep, nil
}

// Fprint renders the regression table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== compare: %s (baseline %s, recorded %s) ==\n",
		r.Scenario, r.BaselineFingerprint, r.BaselineRecordedAt)
	if r.BaselineFingerprint != r.CurrentFingerprint {
		fmt.Fprintf(w, "WARNING: host fingerprint mismatch (current %s) — cross-machine compare, trust only wide bands\n",
			r.CurrentFingerprint)
	}
	rows := [][]string{{"metric", "unit", "baseline", "current", "change", "band", "verdict"}}
	for _, d := range r.Deltas {
		verdict := "ok"
		switch {
		case d.MissingFrom != "":
			verdict = "missing in " + d.MissingFrom
		case d.Regression:
			verdict = "REGRESSION"
		case d.Improved:
			verdict = "improved"
		}
		rows = append(rows, []string{
			d.Name, d.Unit,
			fmt.Sprintf("%.3f", d.Baseline),
			fmt.Sprintf("%.3f", d.Current),
			pct(d.Change), pct(d.Band), verdict,
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, c := range row {
			parts[j] = fmt.Sprintf("%-*s", widths[j], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		if i == 0 {
			sep := make([]string, len(row))
			for j := range sep {
				sep[j] = strings.Repeat("-", widths[j])
			}
			fmt.Fprintln(w, strings.Join(sep, "  "))
		}
	}
	fmt.Fprintf(w, "%d regression(s), %d improvement(s), noise floor %.0f%%, %.1f MADs\n",
		r.Regressions, r.Improvements, r.Options.NoiseFloor*100, r.Options.BandMADs)
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v*100)
}
