package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// SchemaVersion stamps every result file; bump it when the shape changes so
// compare can refuse cross-version diffs instead of misreading them.
const SchemaVersion = 1

// Metric directions: which way "better" points. Compare only flags moves in
// the worse direction.
const (
	HigherIsBetter = "higher"
	LowerIsBetter  = "lower"
)

// Metric is one measured series across a result's trials.
type Metric struct {
	// Unit is display-only ("ev/s", "ms", "count").
	Unit string `json:"unit"`
	// Direction is HigherIsBetter or LowerIsBetter.
	Direction string `json:"direction"`
	// Trials holds the raw per-trial values, in trial order.
	Trials []float64 `json:"trials"`
	// Median and MAD (median absolute deviation) summarize the trials; MAD
	// is the robust spread the noise band derives from.
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
}

// NewMetric builds a Metric from per-trial values, computing median + MAD.
func NewMetric(unit, direction string, trials []float64) *Metric {
	m := &Metric{Unit: unit, Direction: direction, Trials: append([]float64(nil), trials...)}
	m.Median = Median(trials)
	m.MAD = MAD(trials)
	return m
}

// Median returns the middle value (mean of the middle pair for even counts).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MAD returns the median absolute deviation from the median — the robust
// trial-spread statistic the noise band is derived from (a single outlier
// trial cannot inflate it the way a standard deviation would).
func MAD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// Env fingerprints the machine and build a result was recorded on. Results
// are only comparable within one fingerprint (same CPU, same parallelism);
// the CLI warns when fingerprints differ.
type Env struct {
	Fingerprint string `json:"fingerprint"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUModel    string `json:"cpu_model"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	GoVersion   string `json:"go_version"`
	GitSHA      string `json:"git_sha"`
}

// Result is one recorded run — the schema-versioned JSON under
// benchmarks/results/. Kind distinguishes full scenario runs (multi-trial
// metrics) from single-shot experiment emissions (table + obs dump only).
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"` // "scenario" | "experiment"
	Scenario      string `json:"scenario"`
	RecordedAt    string `json:"recorded_at"`
	Env           Env    `json:"env"`
	Spec          *Spec  `json:"spec,omitempty"`
	Trials        int    `json:"trials,omitempty"`
	// Metrics is the comparable surface: per-metric multi-trial stats.
	Metrics map[string]*Metric `json:"metrics,omitempty"`
	// Obs is the final trial's full observability-registry dump
	// (obs.StatsJSON shape): every counter/gauge/histogram the run touched.
	Obs map[string]any `json:"obs,omitempty"`
	// Table carries an experiment's rendered rows (Kind == "experiment").
	Table *TableDump `json:"table,omitempty"`
	Notes []string   `json:"notes,omitempty"`
}

// TableDump is the JSON shape of a bench.Table.
type TableDump struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// NewResult stamps a scenario result skeleton with schema version, time and
// environment.
func NewResult(kind, name string, env Env) *Result {
	return &Result{
		SchemaVersion: SchemaVersion,
		Kind:          kind,
		Scenario:      name,
		RecordedAt:    time.Now().UTC().Format(time.RFC3339),
		Env:           env,
		Metrics:       make(map[string]*Metric),
	}
}

// AddMetric computes stats for trials and stores them under name.
func (r *Result) AddMetric(name, unit, direction string, trials []float64) {
	r.Metrics[name] = NewMetric(unit, direction, trials)
}

// CheckVersion rejects results this code cannot interpret.
func (r *Result) CheckVersion() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("scenario: result schema v%d, this build speaks v%d", r.SchemaVersion, SchemaVersion)
	}
	return nil
}
