package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Default on-disk layout (repo-relative):
//
//	benchmarks/results/<fingerprint>/<scenario>-<timestamp>.json   every -record
//	benchmarks/baselines/<fingerprint>/<scenario>.json             the promoted baseline
//	benchmarks/results/legacy/                                     pre-observatory BENCH_*.json
const (
	DefaultResultsDir   = "benchmarks/results"
	DefaultBaselinesDir = "benchmarks/baselines"
)

// WriteResult persists r under dir/<fingerprint>/<scenario>-<timestamp>.json
// and returns the path.
func WriteResult(dir string, r *Result) (string, error) {
	ts := time.Now().UTC().Format("20060102T150405Z")
	path := filepath.Join(dir, r.Env.Fingerprint, fmt.Sprintf("%s-%s.json", r.Scenario, ts))
	if err := writeJSON(path, r); err != nil {
		return "", err
	}
	return path, nil
}

// BaselinePath is where the promoted baseline for (fingerprint, scenario)
// lives.
func BaselinePath(dir, fingerprint, scenarioName string) string {
	return filepath.Join(dir, fingerprint, scenarioName+".json")
}

// Promote records r as the baseline for its fingerprint, overwriting any
// previous one, and returns the path.
func Promote(dir string, r *Result) (string, error) {
	path := BaselinePath(dir, r.Env.Fingerprint, r.Scenario)
	if err := writeJSON(path, r); err != nil {
		return "", err
	}
	return path, nil
}

// LoadResult reads and version-checks one result file.
func LoadResult(path string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	if err := r.CheckVersion(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}
