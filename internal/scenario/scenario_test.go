package scenario

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMedianMAD(t *testing.T) {
	cases := []struct {
		xs          []float64
		median, mad float64
	}{
		{[]float64{3}, 3, 0},
		{[]float64{1, 2, 3}, 2, 1},
		{[]float64{1, 2, 3, 100}, 2.5, 1},  // outlier barely moves MAD
		{[]float64{10, 10, 10}, 10, 0},
		{[]float64{4, 2}, 3, 1},
		{nil, 0, 0},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.median {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.median)
		}
		if got := MAD(c.xs); got != c.mad {
			t.Errorf("MAD(%v) = %v, want %v", c.xs, got, c.mad)
		}
	}
}

func TestBuiltinsValidateAndLookup(t *testing.T) {
	specs := Builtins()
	if len(specs) < 8 {
		t.Fatalf("builtin library shrank to %d scenarios", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate builtin %q", s.Name)
		}
		seen[s.Name] = true
		if s.MeasuredWindow() <= 0 {
			t.Fatalf("builtin %q has no measured window", s.Name)
		}
	}
	for _, want := range []string{"smoke", "steady", "hotkey", "diurnal", "burst", "rulestorm", "reconnect-storm", "batchmix", "replica"} {
		if Lookup(want) == nil {
			t.Fatalf("builtin %q missing", want)
		}
	}
	if Lookup("no-such") != nil {
		t.Fatal("Lookup invented a scenario")
	}
}

func TestSpecJSONRoundTripAndValidate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.json")
	body := `{
	  "name": "custom",
	  "entities": 5000,
	  "event_rate": 2000,
	  "clients": 3,
	  "warmup": "150ms",
	  "trials": 2,
	  "hot_key_fraction": 0.5,
	  "phases": [
	    {"name": "a", "duration": "200ms", "rate_factor": 0.5},
	    {"name": "b", "duration": 100000000}
	  ]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases[0].Duration.D() != 200*time.Millisecond || s.Phases[1].Duration.D() != 100*time.Millisecond {
		t.Fatalf("durations parsed wrong: %+v", s.Phases)
	}
	if s.Phases[1].RateFactor != 1 || s.Phases[0].RateFactor != 0.5 {
		t.Fatalf("rate factor defaulting wrong: %+v", s.Phases)
	}
	if s.HotKeySetSize != 50 { // 1% of entities
		t.Fatalf("hot key set default = %d, want 50", s.HotKeySetSize)
	}
	if s.MeasuredWindow() != 300*time.Millisecond {
		t.Fatalf("window = %v", s.MeasuredWindow())
	}

	bad := Spec{Name: "bad", Entities: 10, EventRate: 1, Phases: []Phase{{Name: "p"}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Fatalf("zero-duration phase accepted: %v", err)
	}
}

func TestEnvFingerprintStableAndSafe(t *testing.T) {
	a, b := CaptureEnv(), CaptureEnv()
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprint unstable: %q vs %q", a.Fingerprint, b.Fingerprint)
	}
	if strings.ContainsAny(a.Fingerprint, " /()@") {
		t.Fatalf("fingerprint not filesystem-safe: %q", a.Fingerprint)
	}
	if slug("Intel(R) Xeon(R) @ 2.10GHz") != "intel-r-xeon-r-2-10ghz" {
		t.Fatalf("slug: %q", slug("Intel(R) Xeon(R) @ 2.10GHz"))
	}
}

func mkResult(name string, metrics map[string][3]any) *Result {
	r := NewResult("scenario", name, Env{Fingerprint: "test-fp"})
	for n, spec := range metrics {
		r.AddMetric(n, spec[0].(string), spec[1].(string), spec[2].([]float64))
	}
	return r
}

func TestCompareGating(t *testing.T) {
	base := mkResult("s", map[string][3]any{
		"qps":     {"q/s", HigherIsBetter, []float64{100, 102, 98}},
		"lat_ms":  {"ms", LowerIsBetter, []float64{10, 11, 9}},
		"errors":  {"count", LowerIsBetter, []float64{0, 0, 0}},
		"dropped": {"count", LowerIsBetter, []float64{5, 5, 5}},
	})

	// Identical run: no regressions.
	rep, err := Compare(base, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("self-compare found %d regressions", rep.Regressions)
	}

	// Throughput collapse breaches; latency within band does not.
	cur := mkResult("s", map[string][3]any{
		"qps":     {"q/s", HigherIsBetter, []float64{50, 51, 49}},   // -50%
		"lat_ms":  {"ms", LowerIsBetter, []float64{11, 12, 11}},     // +10%, inside 25% floor
		"errors":  {"count", LowerIsBetter, []float64{3, 3, 3}},     // zero baseline, absolute rule
		"dropped": {"count", LowerIsBetter, []float64{2, 2, 2}},     // improvement
	})
	rep, err = Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Delta{}
	for _, d := range rep.Deltas {
		byName[d.Name] = d
	}
	if !byName["qps"].Regression {
		t.Fatal("qps collapse not flagged")
	}
	if byName["lat_ms"].Regression {
		t.Fatal("in-band latency move flagged")
	}
	if !byName["errors"].Regression {
		t.Fatal("errors appearing over a zero baseline not flagged")
	}
	if !byName["dropped"].Improved || byName["dropped"].Regression {
		t.Fatalf("dropped should improve: %+v", byName["dropped"])
	}
	if rep.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2", rep.Regressions)
	}

	// A noisy baseline earns a wider band than the floor: MAD 10 on median
	// 100 with 5 MADs = 50% band, so a -40% move stays in band.
	noisy := mkResult("s", map[string][3]any{
		"qps": {"q/s", HigherIsBetter, []float64{90, 100, 110}},
	})
	cur2 := mkResult("s", map[string][3]any{
		"qps": {"q/s", HigherIsBetter, []float64{60, 60, 60}},
	})
	rep, err = Compare(noisy, cur2, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("in-MAD-band move flagged (band should be 50%%): %+v", rep.Deltas)
	}

	// Mismatched scenarios refuse to compare.
	if _, err := Compare(base, mkResult("other", nil), CompareOptions{}); err == nil {
		t.Fatal("cross-scenario compare accepted")
	}
	// Version skew refuses.
	v2 := mkResult("s", nil)
	v2.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(base, v2, CompareOptions{}); err == nil {
		t.Fatal("version-skewed compare accepted")
	}
}

func TestCompareReportsMissingMetrics(t *testing.T) {
	base := mkResult("s", map[string][3]any{"a": {"x", HigherIsBetter, []float64{1}}})
	cur := mkResult("s", map[string][3]any{"b": {"x", HigherIsBetter, []float64{1}}})
	rep, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatal("missing metrics must not gate")
	}
	miss := map[string]string{}
	for _, d := range rep.Deltas {
		miss[d.Name] = d.MissingFrom
	}
	if miss["a"] != "current" || miss["b"] != "baseline" {
		t.Fatalf("missing-from wrong: %v", miss)
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	if !strings.Contains(sb.String(), "missing in") {
		t.Fatalf("report does not show missing metrics:\n%s", sb.String())
	}
}

func TestStoreRoundTripAndPromote(t *testing.T) {
	dir := t.TempDir()
	r := mkResult("smoke", map[string][3]any{"qps": {"q/s", HigherIsBetter, []float64{10, 12}}})
	path, err := WriteResult(filepath.Join(dir, "results"), r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, filepath.Join("results", "test-fp")) || !strings.Contains(filepath.Base(path), "smoke-") {
		t.Fatalf("result path layout wrong: %s", path)
	}
	got, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics["qps"].Median != 11 || got.Metrics["qps"].MAD != 1 {
		t.Fatalf("round trip lost stats: %+v", got.Metrics["qps"])
	}
	if got.Kind != "scenario" || got.RecordedAt == "" {
		t.Fatalf("round trip lost envelope: %+v", got)
	}

	bp, err := Promote(filepath.Join(dir, "baselines"), r)
	if err != nil {
		t.Fatal(err)
	}
	if bp != BaselinePath(filepath.Join(dir, "baselines"), "test-fp", "smoke") {
		t.Fatalf("baseline path: %s", bp)
	}
	if _, err := LoadResult(bp); err != nil {
		t.Fatal(err)
	}

	// Unknown schema versions refuse to load.
	raw, _ := os.ReadFile(bp)
	mut := strings.Replace(string(raw), `"schema_version": 1`, `"schema_version": 99`, 1)
	if mut == string(raw) {
		t.Fatal("fixture: version field not found")
	}
	if err := os.WriteFile(bp, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResult(bp); err == nil {
		t.Fatal("future schema version loaded")
	}
}

func TestNewMetricDoesNotAliasTrials(t *testing.T) {
	xs := []float64{1, 2, 3}
	m := NewMetric("x", HigherIsBetter, xs)
	xs[0] = 100
	if m.Trials[0] != 1 {
		t.Fatal("NewMetric aliased caller slice")
	}
	if math.IsNaN(m.Median) {
		t.Fatal("median NaN")
	}
}
