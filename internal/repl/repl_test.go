package repl

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/schema"
)

func replSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func newNode(t *testing.T, arch *archive.Archive) *core.StorageNode {
	t.Helper()
	node, err := core.NewNode(core.Config{
		Schema: replSchema(t), Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	return node
}

func openArchive(t *testing.T, opts archive.Options) *archive.Archive {
	t.Helper()
	a, err := archive.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func mkEvent(i int) event.Event {
	return event.Event{Caller: uint64(i%8) + 1, Timestamp: int64(i + 1), Duration: int64(i), Cost: 1}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerTailsArchiveIntoOwnWAL is the in-process shipping round trip:
// events appended to the primary's archive land on the follower exactly
// once, in order, and the follower's own WAL mirrors the primary's LSNs.
func TestFollowerTailsArchiveIntoOwnWAL(t *testing.T) {
	parch := openArchive(t, archive.Options{SegmentEvents: 16}) // rotate often
	farch := openArchive(t, archive.Options{})
	fnode := newNode(t, farch)
	reg := obs.NewRegistry()
	f := NewFollower(fnode, 0, FollowerConfig{Metrics: reg, Label: "s0"})
	if err := f.Start(NewArchiveSource(parch, 0, ArchiveSourceConfig{MaxEvents: 7, Heartbeat: 5 * time.Millisecond})); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	const total = 150
	for i := 0; i < total; i++ {
		ev := mkEvent(i)
		if _, err := parch.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "catch-up", func() bool { return f.AppliedLSN() == total && f.Lag() == 0 })

	// The follower's own WAL is the primary's log, LSN for LSN.
	n := 0
	err := farch.Replay(0, func(lsn uint64, ev event.Event) error {
		if want := mkEvent(int(lsn)); ev != want {
			t.Fatalf("lsn %d: follower WAL %+v, want %+v", lsn, ev, want)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("follower WAL has %d events, want %d", n, total)
	}

	// The per-follower instruments are registered and live.
	if s, ok := reg.Find(`aim_repl_lag_events{follower="s0"}`); !ok || s.Value != 0 {
		t.Fatalf("lag gauge: found=%v value=%v", ok, s.Value)
	}
	if s, ok := reg.Find(`aim_repl_lag_seconds{follower="s0"}`); !ok || s.Value != 0 {
		t.Fatalf("lag-seconds gauge: found=%v value=%v", ok, s.Value)
	}
	if s, ok := reg.Find(`aim_repl_events_total{follower="s0"}`); !ok || s.Value != total {
		t.Fatalf("events counter: found=%v value=%v", ok, s.Value)
	}
	if s, ok := reg.Find(`aim_repl_staleness_seconds{follower="s0"}`); !ok || s.Value == 0 {
		t.Fatalf("staleness histogram: found=%v observations=%v", ok, s.Value)
	}
}

// TestFollowerReopensAfterSourceFailure: a dying source is redialed via the
// Reopen hook from the applied watermark, and overlapping redelivery is
// deduplicated by the watermark skip.
func TestFollowerReopensAfterSourceFailure(t *testing.T) {
	parch := openArchive(t, archive.Options{})
	fnode := newNode(t, nil)

	var reopens atomic.Int32
	f := NewFollower(fnode, 0, FollowerConfig{
		ReopenBackoff: time.Millisecond,
		Reopen: func(fromLSN uint64) (Source, error) {
			reopens.Add(1)
			// Deliberately resubscribe a little BELOW the watermark to
			// exercise the overlap-skip path.
			from := uint64(0)
			if fromLSN > 3 {
				from = fromLSN - 3
			}
			return NewArchiveSource(parch, from, ArchiveSourceConfig{Heartbeat: 5 * time.Millisecond}), nil
		},
	})

	const half, total = 40, 80
	for i := 0; i < half; i++ {
		ev := mkEvent(i)
		if _, err := parch.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	src := NewArchiveSource(parch, 0, ArchiveSourceConfig{Heartbeat: 5 * time.Millisecond})
	if err := f.Start(src); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	waitFor(t, "first half", func() bool { return f.AppliedLSN() == half })

	src.Close() // the wire drops; the follower must redial
	for i := half; i < total; i++ {
		ev := mkEvent(i)
		if _, err := parch.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "catch-up after reopen", func() bool { return f.AppliedLSN() == total })
	if reopens.Load() == 0 {
		t.Fatal("Reopen hook never used")
	}
	if err := f.Err(); err != nil {
		t.Fatalf("tail loop failed: %v", err)
	}
	// Overlap redelivery must not double-apply: exactly total events.
	if err := fnode.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := fnode.Stats().EventsProcessed; got != total {
		t.Fatalf("follower processed %d events, want %d", got, total)
	}
}

// TestFollowerDetectsGap: a stream that skips past the watermark (the
// primary GC'd the log below the subscription point) is a typed ErrGap.
func TestFollowerDetectsGap(t *testing.T) {
	parch := openArchive(t, archive.Options{SegmentEvents: 4})
	fnode := newNode(t, nil)
	for i := 0; i < 12; i++ {
		ev := mkEvent(i)
		if _, err := parch.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := parch.TruncateBelow(8); err != nil {
		t.Fatal(err)
	}
	f := NewFollower(fnode, 0, FollowerConfig{})
	// Subscribe at the retention floor, as the server-side clamp would.
	if err := f.Start(NewArchiveSource(parch, parch.FirstLSN(), ArchiveSourceConfig{})); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	waitFor(t, "gap detection", func() bool { return f.Err() != nil })
	if !errors.Is(f.Err(), ErrGap) {
		t.Fatalf("err = %v, want ErrGap", f.Err())
	}
	if f.AppliedLSN() != 0 {
		t.Fatalf("gapped follower advanced its watermark to %d", f.AppliedLSN())
	}
}

// TestPromoteSealsAndIsIdempotent: Promote stops the tail, drains the node,
// returns the watermark, and repeats return the same answer; a sealed
// follower refuses to restart.
func TestPromoteSealsAndIsIdempotent(t *testing.T) {
	parch := openArchive(t, archive.Options{})
	fnode := newNode(t, nil)
	for i := 0; i < 25; i++ {
		ev := mkEvent(i)
		if _, err := parch.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	f := NewFollower(fnode, 0, FollowerConfig{})
	if err := f.Start(NewArchiveSource(parch, 0, ArchiveSourceConfig{})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "catch-up", func() bool { return f.AppliedLSN() == 25 })

	sealed, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if sealed != 25 {
		t.Fatalf("sealed at %d, want 25", sealed)
	}
	if !f.Sealed() || f.Running() {
		t.Fatalf("after promote: sealed=%v running=%v", f.Sealed(), f.Running())
	}
	if got := fnode.Stats().EventsProcessed; got != 25 {
		t.Fatalf("promote did not drain: %d events processed", got)
	}
	again, err := f.Promote()
	if err != nil || again != sealed {
		t.Fatalf("second promote: %d, %v", again, err)
	}
	if err := f.Start(NewArchiveSource(parch, sealed, ArchiveSourceConfig{})); err == nil {
		t.Fatal("sealed follower restarted its tail")
	}
}
