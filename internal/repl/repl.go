// Package repl implements WAL log-shipping replication: a follower replica
// tails the primary's event archive — in process or over the netproto wire
// — and applies the stream into its own delta/main through the batched
// ingest path, exposing an applied-LSN watermark.
//
// The shape follows PolarDB-IMCI (PAPERS.md): the primary absorbs writes
// and ships its redo stream; in-memory column replicas serve analytics.
// The paper's single-node AIM design has no availability story — this
// package, together with the cluster's promotion state machine, adds one:
// RTA scans fan out to freshness-bounded followers, and when a primary
// dies the most-caught-up follower is sealed at its watermark, topped up
// from the dead primary's surviving WAL suffix, and promoted.
package repl

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/archive"
	"repro/internal/event"
)

// Batch is one shipped chunk of the primary's log.
type Batch struct {
	// FirstLSN is the LSN of Events[0].
	FirstLSN uint64
	// Frontier is the primary's next-LSN when the batch was cut; the
	// follower's lag is Frontier minus its applied watermark.
	Frontier uint64
	// Origin is the primary's wall clock when the batch was cut, feeding
	// the t_fresh-style replica staleness histogram.
	Origin time.Time
	// Events is empty for a pure heartbeat (a frontier/liveness update).
	Events []event.Event
}

// ErrSourceClosed is returned by Next after Close.
var ErrSourceClosed = errors.New("repl: source closed")

// ErrGap reports a log-shipping discontinuity: the source delivered a batch
// starting past the follower's applied watermark, so events are missing and
// the replica can no longer be trusted (it must be rebuilt or re-seeded).
var ErrGap = errors.New("repl: log stream gap")

// Source is a follower's view of the primary's log. Next blocks until
// events past the subscription cursor are committed, returning at the
// latest after the source's heartbeat interval with an empty batch carrying
// a fresh frontier. Implementations: ArchiveSource (in-process tailing) and
// netproto.DialReplica (the wire protocol's subscribe-from-LSN stream).
type Source interface {
	Next() (Batch, error)
	Close() error
}

// ArchiveSourceConfig tunes an ArchiveSource. The zero value selects the
// defaults.
type ArchiveSourceConfig struct {
	// MaxEvents bounds one batch (default 512).
	MaxEvents int
	// Poll is the idle re-check interval (default 1ms).
	Poll time.Duration
	// Heartbeat bounds how long Next blocks without news (default 25ms).
	Heartbeat time.Duration
}

func (cfg ArchiveSourceConfig) withDefaults() ArchiveSourceConfig {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 512
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 25 * time.Millisecond
	}
	return cfg
}

// ArchiveSource tails a live archive in process — the shipping path when
// follower and primary share an address space (tests, benches, and the
// cluster's local deployments), and the building block the netproto server
// uses to feed remote subscribers.
type ArchiveSource struct {
	a      *archive.Archive
	cursor uint64
	cfg    ArchiveSourceConfig
	quit   chan struct{}
}

// NewArchiveSource subscribes to a starting at fromLSN.
func NewArchiveSource(a *archive.Archive, fromLSN uint64, cfg ArchiveSourceConfig) *ArchiveSource {
	return &ArchiveSource{a: a, cursor: fromLSN, cfg: cfg.withDefaults(), quit: make(chan struct{})}
}

// Next returns the next committed chunk, or a heartbeat when the archive
// stays quiet for the heartbeat interval.
func (s *ArchiveSource) Next() (Batch, error) {
	deadline := time.Now().Add(s.cfg.Heartbeat)
	for {
		select {
		case <-s.quit:
			return Batch{}, ErrSourceClosed
		default:
		}
		evs, frontier, err := s.a.ReadFrom(s.cursor, s.cfg.MaxEvents)
		if err != nil {
			return Batch{}, err
		}
		if len(evs) > 0 {
			b := Batch{FirstLSN: s.cursor, Frontier: frontier, Origin: time.Now(), Events: evs}
			s.cursor += uint64(len(evs))
			return b, nil
		}
		if !time.Now().Before(deadline) {
			return Batch{FirstLSN: s.cursor, Frontier: frontier, Origin: time.Now()}, nil
		}
		select {
		case <-s.quit:
			return Batch{}, ErrSourceClosed
		case <-time.After(s.cfg.Poll):
		}
	}
}

// Close unblocks a pending Next and ends the subscription.
func (s *ArchiveSource) Close() error {
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	return nil
}

// ReplayArchiveTail feeds every committed event at/after fromLSN to emit in
// LSN-ordered batches of at most batch events — the promotion top-up path:
// a sealed follower is brought level with the dead primary's surviving
// (salvaged) WAL before ingest re-points at it. Unlike a Source it
// terminates at the frontier instead of waiting for more.
func ReplayArchiveTail(a *archive.Archive, fromLSN uint64, batch int, emit func(evs []event.Event) error) error {
	if batch <= 0 {
		batch = 256
	}
	cursor := fromLSN
	for {
		evs, _, err := a.ReadFrom(cursor, batch)
		if err != nil {
			return fmt.Errorf("repl: tail replay at lsn %d: %w", cursor, err)
		}
		if len(evs) == 0 {
			return nil
		}
		if err := emit(evs); err != nil {
			return err
		}
		cursor += uint64(len(evs))
	}
}
