package repl

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
)

// TestFollowerMetricsExposition pins the PR 7 replication gauges to the
// Prometheus surface: a live follower's lag/staleness/reconnect series must
// appear on obs.Serve's /metrics exposition (not just in the registry), so
// follower observability can't silently drop out of scrapes.
func TestFollowerMetricsExposition(t *testing.T) {
	parch := openArchive(t, archive.Options{SegmentEvents: 16})
	fnode := newNode(t, nil)
	reg := obs.NewRegistry()

	var sourceFailures int
	f := NewFollower(fnode, 0, FollowerConfig{
		Metrics:       reg,
		Label:         "exp0",
		ReopenBackoff: time.Millisecond,
		Reopen: func(fromLSN uint64) (Source, error) {
			return NewArchiveSource(parch, fromLSN, ArchiveSourceConfig{Heartbeat: 2 * time.Millisecond}), nil
		},
	})
	// First source dies immediately so the reconnect counter moves.
	dying := NewArchiveSource(parch, 0, ArchiveSourceConfig{Heartbeat: 2 * time.Millisecond})
	if err := f.Start(dying); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	dying.Close()
	sourceFailures++

	const total = 40
	for i := 0; i < total; i++ {
		ev := mkEvent(i)
		if _, err := parch.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "follower catch-up", func() bool { return f.AppliedLSN() == total })

	srv, err := obs.Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every follower series from PR 7, by exact exposed name.
	mustContain := []string{
		`aim_repl_lag_events{follower="exp0"}`,
		`aim_repl_lag_seconds{follower="exp0"}`,
		`aim_repl_staleness_seconds_bucket{follower="exp0",le="+Inf"}`,
		fmt.Sprintf(`aim_repl_staleness_seconds_count{follower="exp0"} %d`, countBatches(body)),
		`aim_repl_batches_total{follower="exp0"}`,
		fmt.Sprintf(`aim_repl_events_total{follower="exp0"} %d`, total),
		fmt.Sprintf(`aim_repl_reconnects_total{follower="exp0"} %d`, sourceFailures),
		// And the build-info/uptime series every Serve endpoint now carries.
		`aim_build_info{`,
		`aim_process_uptime_seconds`,
	}
	for _, want := range mustContain {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("repl series in exposition:\n%s", grepLines(body, "aim_repl_"))
	}
}

// countBatches extracts the follower's applied-batch count from the
// exposition so the staleness histogram count can be cross-checked against
// the batch counter (each applied batch observes once).
func countBatches(body string) int {
	for _, line := range strings.Split(body, "\n") {
		var n int
		if _, err := fmt.Sscanf(line, `aim_repl_batches_total{follower="exp0"} %d`, &n); err == nil {
			return n
		}
	}
	return -1
}

func grepLines(body, prefix string) string {
	var sb strings.Builder
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
