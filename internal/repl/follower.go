package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// FollowerConfig tunes a Follower. The zero value works.
type FollowerConfig struct {
	// Reopen, when set, re-establishes the log stream after a source
	// failure (a redial against a restarted primary). It receives the
	// follower's applied watermark so the new subscription resumes exactly
	// where the old one stopped. Nil means a source failure ends the tail
	// loop (the follower stays promotable at its watermark).
	Reopen func(fromLSN uint64) (Source, error)
	// ReopenBackoff paces reconnect attempts (default 100ms).
	ReopenBackoff time.Duration
	// Metrics, when set, registers the per-follower lag instruments
	// (aim_repl_lag_events, aim_repl_lag_seconds, staleness histogram).
	Metrics *obs.Registry
	// Label distinguishes this follower's metric series ({follower="…"}).
	Label string
}

// Follower tails a Source into its own storage node via the batched apply
// path. The node is owned by the caller (it typically has its own WAL, so a
// promoted follower is durable from the first shipped event); the follower
// owns the tail loop and the applied-LSN watermark.
type Follower struct {
	node *core.StorageNode
	cfg  FollowerConfig

	applied  atomic.Uint64 // next LSN to apply == events applied so far
	frontier atomic.Uint64 // latest observed primary next-LSN
	// lagSince is the wall clock (unix nanos) when the follower last fell
	// behind the frontier; 0 while caught up. Drives aim_repl_lag_seconds.
	lagSince atomic.Int64

	mu      sync.Mutex
	src     Source
	lastErr error
	sealed  bool
	running bool
	quit    chan struct{}
	done    chan struct{}

	met followerMetrics
}

type followerMetrics struct {
	staleness *obs.Histogram
	batches   *obs.Counter
	events    *obs.Counter
	redials   *obs.Counter
}

// NewFollower wraps node as a replica applying from fromLSN (the node's own
// archive frontier on a restart, 0 for a fresh replica).
func NewFollower(node *core.StorageNode, fromLSN uint64, cfg FollowerConfig) *Follower {
	if cfg.ReopenBackoff <= 0 {
		cfg.ReopenBackoff = 100 * time.Millisecond
	}
	f := &Follower{node: node, cfg: cfg}
	f.applied.Store(fromLSN)
	f.frontier.Store(fromLSN)
	if reg := cfg.Metrics; reg != nil {
		lbl := func(name string) string {
			if cfg.Label == "" {
				return name
			}
			return obs.Label(name, "follower", cfg.Label)
		}
		reg.GaugeFunc(lbl("aim_repl_lag_events"),
			"Replication lag in events: primary frontier minus the follower's applied LSN.",
			func() float64 { return float64(f.Lag()) })
		reg.GaugeFunc(lbl("aim_repl_lag_seconds"),
			"How long the follower has continuously been behind the frontier (0 when caught up).",
			func() float64 {
				since := f.lagSince.Load()
				if since == 0 {
					return 0
				}
				return time.Since(time.Unix(0, since)).Seconds()
			})
		f.met = followerMetrics{
			staleness: reg.LatencyHistogram(lbl("aim_repl_staleness_seconds"),
				"Replica staleness per applied batch: follower apply time minus primary batch-cut time (t_fresh for replica reads)."),
			batches: reg.Counter(lbl("aim_repl_batches_total"),
				"Log batches applied by the follower (heartbeats excluded)."),
			events: reg.Counter(lbl("aim_repl_events_total"),
				"Events applied by the follower."),
			redials: reg.Counter(lbl("aim_repl_reconnects_total"),
				"Log-stream reconnects after a source failure."),
		}
	}
	return f
}

// Node returns the follower's storage node (the scan-serving handle, and
// the handle a promotion re-points ingest at).
func (f *Follower) Node() *core.StorageNode { return f.node }

// AppliedLSN is the watermark: every event below it is durably logged on
// the follower and handed to its ESP workers.
func (f *Follower) AppliedLSN() uint64 { return f.applied.Load() }

// Frontier is the latest primary next-LSN the follower has observed.
func (f *Follower) Frontier() uint64 { return f.frontier.Load() }

// Lag is the follower's replication lag in events.
func (f *Follower) Lag() uint64 {
	fr, ap := f.frontier.Load(), f.applied.Load()
	if fr <= ap {
		return 0
	}
	return fr - ap
}

// Err returns the error that ended the tail loop, if any.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// Running reports whether the tail loop is live (applying or reconnecting).
func (f *Follower) Running() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.running
}

// Sealed reports whether the follower's replay has been sealed by Promote.
func (f *Follower) Sealed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sealed
}

// Start begins tailing src. The subscription must have been opened at the
// follower's applied watermark.
func (f *Follower) Start(src Source) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return errors.New("repl: follower already promoted")
	}
	if f.running {
		return errors.New("repl: follower already tailing")
	}
	f.src = src
	f.lastErr = nil
	f.running = true
	f.quit = make(chan struct{})
	f.done = make(chan struct{})
	go f.run(src, f.quit, f.done)
	return nil
}

func (f *Follower) run(src Source, quit <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	defer func() {
		f.mu.Lock()
		f.running = false
		f.mu.Unlock()
	}()
	for {
		select {
		case <-quit:
			return
		default:
		}
		b, err := src.Next()
		if err != nil {
			select {
			case <-quit:
				return
			default:
			}
			src = f.reopen(quit, err)
			if src == nil {
				return
			}
			continue
		}
		if err := f.apply(b); err != nil {
			f.fail(err)
			return
		}
	}
}

// reopen re-establishes the stream after cause, honoring Reopen/backoff.
// Nil means the loop should end (no reopen policy, or the follower is
// stopping).
func (f *Follower) reopen(quit <-chan struct{}, cause error) Source {
	if f.cfg.Reopen == nil {
		f.fail(cause)
		return nil
	}
	for {
		select {
		case <-quit:
			return nil
		case <-time.After(f.cfg.ReopenBackoff):
		}
		src, err := f.cfg.Reopen(f.applied.Load())
		if err != nil {
			continue
		}
		f.met.redials.Inc()
		f.mu.Lock()
		f.src = src
		f.mu.Unlock()
		return src
	}
}

func (f *Follower) fail(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// apply folds one shipped batch into the node and advances the watermark.
func (f *Follower) apply(b Batch) error {
	applied := f.applied.Load()
	evs := b.Events
	if len(evs) > 0 {
		if b.FirstLSN > applied {
			return fmt.Errorf("%w: batch starts at lsn %d, applied watermark is %d", ErrGap, b.FirstLSN, applied)
		}
		if skip := applied - b.FirstLSN; skip > 0 {
			// Overlap after a resubscription: the prefix is already applied.
			if skip >= uint64(len(evs)) {
				evs = nil
			} else {
				evs = evs[skip:]
			}
		}
	}
	if len(evs) > 0 {
		if err := f.node.ProcessEventBatch(evs); err != nil {
			var pe *core.PartialBatchError
			if errors.As(err, &pe) {
				f.applied.Store(applied + uint64(pe.Applied))
			}
			return fmt.Errorf("repl: follower apply at lsn %d: %w", applied, err)
		}
		applied += uint64(len(evs))
		f.applied.Store(applied)
		f.met.batches.Inc()
		f.met.events.Add(uint64(len(evs)))
		f.met.staleness.ObserveSince(b.Origin)
	}
	if b.Frontier > f.frontier.Load() {
		f.frontier.Store(b.Frontier)
	}
	if applied >= f.frontier.Load() {
		f.lagSince.Store(0)
	} else if f.lagSince.Load() == 0 {
		f.lagSince.Store(time.Now().UnixNano())
	}
	return nil
}

// stopTail ends the tail loop and waits for it.
func (f *Follower) stopTail() {
	f.mu.Lock()
	quit, done, src := f.quit, f.done, f.src
	if quit != nil {
		select {
		case <-quit:
		default:
			close(quit)
		}
	}
	f.mu.Unlock()
	if src != nil {
		_ = src.Close() // unblock a pending Next
	}
	if done != nil {
		<-done
	}
}

// Stop ends the tail loop without sealing (shutdown). The node keeps
// running; the caller owns stopping it.
func (f *Follower) Stop() { f.stopTail() }

// Promote seals the follower's replay at its watermark: the tail loop is
// stopped, everything already applied is drained through the ESP workers,
// and the sealed watermark is returned. After Promote the node's state is
// exactly the primary's WAL prefix [0, sealed) — the caller (the cluster's
// promotion state machine) tops it up with the dead primary's surviving WAL
// suffix and re-points ingest at Node(). Idempotent: a second Promote
// returns the same watermark.
func (f *Follower) Promote() (uint64, error) {
	f.stopTail()
	f.mu.Lock()
	already := f.sealed
	f.sealed = true
	f.mu.Unlock()
	if !already {
		if err := f.node.FlushEvents(); err != nil {
			return f.applied.Load(), fmt.Errorf("repl: promote drain: %w", err)
		}
	}
	return f.applied.Load(), nil
}
