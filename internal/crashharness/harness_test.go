package crashharness

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/event"
	"repro/internal/netproto"
	"repro/internal/schema"
	"repro/internal/workload"
)

// entities is the caller-id universe the workload touches; verification
// compares every one of them.
const entities = 32

// buildServer compiles aimserver once for the whole test binary.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aimserver")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/aimserver")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build aimserver: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// server wraps one aimserver child process.
type server struct {
	cmd  *exec.Cmd
	addr string
	done chan error // cmd.Wait result
}

// startServer launches aimserver on an ephemeral port and waits until it
// accepts traffic. crashSpec, when non-empty, arms AIM_CRASHPOINTS in the
// child. extra appends flags.
func startServer(t *testing.T, bin, dataDir, crashSpec string, extra ...string) (*server, error) {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-stats", "0",
		"-rules", "0",
		"-partitions", "2",
		"-recover", "auto",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), crashpoint.EnvVar+"="+crashSpec)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	errLines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		var lastLines []string
		for sc.Scan() {
			line := sc.Text()
			lastLines = append(lastLines, line)
			if len(lastLines) > 12 {
				lastLines = lastLines[1:]
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
		errLines <- strings.Join(lastLines, "\n")
	}()
	go func() { s.done <- cmd.Wait() }()
	select {
	case s.addr = <-addrCh:
		return s, nil
	case <-s.done:
		return nil, fmt.Errorf("server exited before listening:\n%s", <-errLines)
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("server did not start listening")
	}
}

// waitExit blocks until the child exits, force-killing at the deadline, and
// returns its exit code (crashpoint.ExitCode, -1 for signals, ...).
func (s *server) waitExit(deadline time.Duration) int {
	select {
	case <-s.done:
	case <-time.After(deadline):
		s.cmd.Process.Kill()
		<-s.done
	}
	return s.cmd.ProcessState.ExitCode()
}

func (s *server) sigkill() {
	s.cmd.Process.Kill()
	<-s.done
}

func (s *server) sigterm(t *testing.T) {
	t.Helper()
	s.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-s.done:
	case <-time.After(20 * time.Second):
		s.cmd.Process.Kill()
		<-s.done
		t.Error("server ignored SIGTERM")
	}
}

// mkEvent generates the i-th deterministic workload event.
func mkEvent(i int) event.Event {
	return event.Event{
		Caller:       uint64(i%entities) + 1,
		Callee:       uint64(i%7) + 1,
		Timestamp:    int64(i),
		Duration:     int64(i%120) + 1,
		Cost:         float64(i%50) / 10,
		LongDistance: i%3 == 0,
	}
}

// ingest pumps events at the server until stop is set or delivery starts
// failing (the child died). Returns how many events were sent.
func ingest(cli *netproto.Client, stop *atomic.Bool) int {
	sent := 0
	for i := 0; !stop.Load(); i++ {
		if err := cli.ProcessEventAsync(mkEvent(i)); err != nil {
			// The child is dying mid-crash — expected.
			time.Sleep(2 * time.Millisecond)
			continue
		}
		sent++
	}
	return sent
}

// referenceState replays the (salvaged) archive synchronously through a
// fresh in-process node and returns every entity's record. The wal
// directory must be a private copy: salvage repairs in place.
func referenceState(t *testing.T, walCopy string) map[uint64]schema.Record {
	t.Helper()
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := workload.BuildDimensions(42) // aimserver's default seed
	if err != nil {
		t.Fatal(err)
	}
	arch, err := archive.Open(walCopy, archive.Options{Recovery: archive.Salvage})
	if err != nil {
		t.Fatalf("reference archive open: %v", err)
	}
	defer arch.Close()
	node, err := core.NewNode(core.Config{
		Schema: sch, Dims: dims.Store, Partitions: 2, BucketSize: 256,
		Factory: dims.Factory(sch),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	err = arch.Replay(0, func(_ uint64, ev event.Event) error {
		return node.ProcessEventAsync(ev)
	})
	if err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	if err := node.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]schema.Record)
	for e := uint64(1); e <= entities; e++ {
		rec, _, ok, err := node.Get(e)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out[e] = rec
		}
	}
	return out
}

// copyDir copies every regular file under src into dst (flat tree: the wal
// directory has no subdirectories).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// compareStates asserts the recovered server's matrix matches the reference
// record for record, ignoring the version slot (version counters restart
// with recovery; they are bookkeeping, not state).
func compareStates(t *testing.T, iter int, cli *netproto.Client, ref map[uint64]schema.Record) {
	t.Helper()
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= entities; e++ {
		got, _, ok, err := cli.Get(e)
		if err != nil {
			t.Fatalf("iter %d: get entity %d: %v", iter, e, err)
		}
		want, wantOK := ref[e]
		if ok != wantOK {
			t.Errorf("iter %d: entity %d present=%v, reference=%v", iter, e, ok, wantOK)
			continue
		}
		if !ok {
			continue
		}
		for s := 0; s < sch.Slots; s++ {
			if s == sch.VersionSlot {
				continue
			}
			if got[s] != want[s] {
				t.Errorf("iter %d: entity %d slot %d: recovered %#x, reference %#x",
					iter, e, s, got[s], want[s])
				break
			}
		}
	}
}

// TestCrashRecoveryRandomKillPoints is the crash-injection campaign: each
// iteration runs a live ingest+checkpoint workload, kills the server at a
// random crashpoint (or a random wall-clock instant), restarts it with
// -recover auto, and verifies the recovered matrix against a synchronous
// replay of the salvaged archive. AIM_CRASH_KILLS sets the iteration count
// (default 8 so plain `go test` stays fast; `make crash` runs 100).
func TestCrashRecoveryRandomKillPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short")
	}
	iters := 8
	if v := os.Getenv("AIM_CRASH_KILLS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad AIM_CRASH_KILLS %q", v)
		}
		iters = n
	}
	seed := time.Now().UnixNano()
	if v := os.Getenv("AIM_CRASH_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad AIM_CRASH_SEED %q", v)
		}
		seed = n
	}
	t.Logf("crash campaign: %d iterations, seed %d (rerun with AIM_CRASH_SEED=%d)", iters, seed, seed)
	rng := rand.New(rand.NewSource(seed))
	bin := buildServer(t)
	points := crashpoint.Points()

	for iter := 0; iter < iters; iter++ {
		iterDir := filepath.Join(t.TempDir(), fmt.Sprintf("it%03d", iter))
		dataDir := filepath.Join(iterDir, "data")

		// Half the iterations run the tiered main with eager freezing and a
		// tiny bucket (32 entities fill several 8-record buckets per
		// partition), so deaths land mid-freeze/thaw churn and the
		// core.bucket-freeze point is actually reachable.
		tiered := iter%2 == 0

		// Pick how this process dies: 1 in 4 iterations use a raw SIGKILL
		// at a random instant; the rest arm one random crashpoint with a
		// random countdown. Flat iterations never arm the freeze point —
		// it can't fire without -bucket-freeze, and the 4s fallback kill
		// would just slow the campaign down.
		spec := ""
		if iter%4 != 3 {
			p := points[rng.Intn(len(points))]
			for !tiered && p == crashpoint.CoreBucketFreeze {
				p = points[rng.Intn(len(points))]
			}
			spec = fmt.Sprintf("%s:%d", p, 1+rng.Intn(60))
		}

		extra := []string{"-checkpoint-every", "25ms", "-base-every", "3", "-checkpoint-gc=false"}
		if tiered {
			extra = append(extra, "-bucket", "8", "-bucket-freeze", "-cold-after", "0")
		}
		srv, err := startServer(t, bin, dataDir, spec, extra...)
		if err != nil {
			t.Fatalf("iter %d (spec %q): %v", iter, spec, err)
		}
		sch, err := workload.BuildSmallSchema()
		if err != nil {
			t.Fatal(err)
		}
		cli, err := netproto.DialConfig(srv.addr, sch, netproto.ClientConfig{
			CallTimeout: 2 * time.Second, MaxRetries: -1, DisableReconnect: true,
		})
		if err != nil {
			t.Fatalf("iter %d: dial: %v", iter, err)
		}
		var stop atomic.Bool
		sentCh := make(chan int, 1)
		go func() { sentCh <- ingest(cli, &stop) }()

		var exitCode int
		if spec == "" {
			// Timed kill: let ingest+checkpoints run, then pull the plug.
			time.Sleep(time.Duration(150+rng.Intn(600)) * time.Millisecond)
			srv.sigkill()
			exitCode = -1
		} else {
			// Wait for the armed point to fire; if the workload never
			// reaches it, fall back to a hard kill at the deadline.
			exitCode = srv.waitExit(4 * time.Second)
		}
		stop.Store(true)
		sent := <-sentCh
		cli.Close()
		if exitCode == 0 {
			t.Fatalf("iter %d (spec %q): server exited cleanly mid-campaign", iter, spec)
		}

		// Reference: salvage + synchronously replay a private copy of the
		// archive as it was at the moment of death.
		refWal := filepath.Join(iterDir, "refwal")
		copyDir(t, filepath.Join(dataDir, "wal"), refWal)
		ref := referenceState(t, refWal)

		// Restart on the same data directory and verify. Tiered iterations
		// restart tiered too: recovery rehydrates every bucket hot, then the
		// idle merge loop re-freezes them, so the reads below cross the
		// compressed path.
		restart := []string{"-checkpoint-every", "0"}
		if tiered {
			restart = append(restart, "-bucket", "8", "-bucket-freeze", "-cold-after", "0")
		}
		srv2, err := startServer(t, bin, dataDir, "", restart...)
		if err != nil {
			t.Fatalf("iter %d (spec %q, exit %d, %d events sent): recovery failed: %v",
				iter, spec, exitCode, sent, err)
		}
		cli2, err := netproto.Dial(srv2.addr, sch)
		if err != nil {
			t.Fatalf("iter %d: dial recovered: %v", iter, err)
		}
		compareStates(t, iter, cli2, ref)
		cli2.Close()
		srv2.sigterm(t)
		if t.Failed() {
			t.Fatalf("iter %d (spec %q, exit %d, %d events sent): matrix mismatch", iter, spec, exitCode, sent)
		}
		if err := os.RemoveAll(iterDir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGracefulShutdownPreservesEverything is the satellite check for the
// SIGTERM path: a drained shutdown must lose nothing, and the restart must
// come back Strict-clean with a zero-length replay surprise budget.
func TestGracefulShutdownPreservesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process test skipped in -short")
	}
	bin := buildServer(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	srv, err := startServer(t, bin, dataDir, "", "-checkpoint-every", "50ms", "-base-every", "2")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := netproto.Dial(srv.addr, sch)
	if err != nil {
		t.Fatal(err)
	}
	const events = 5000
	for i := 0; i < events; i++ {
		if err := cli.ProcessEventAsync(mkEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	srv.sigterm(t)

	refWal := filepath.Join(t.TempDir(), "refwal")
	copyDir(t, filepath.Join(dataDir, "wal"), refWal)
	ref := referenceState(t, refWal)

	srv2, err := startServer(t, bin, dataDir, "", "-checkpoint-every", "0", "-recover", "strict")
	if err != nil {
		t.Fatalf("strict recovery after graceful shutdown failed: %v", err)
	}
	cli2, err := netproto.Dial(srv2.addr, sch)
	if err != nil {
		t.Fatal(err)
	}
	compareStates(t, 0, cli2, ref)
	cli2.Close()
	srv2.sigterm(t)
}
