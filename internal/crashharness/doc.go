// Package crashharness kills aimserver child processes at random points
// during a live ingest+checkpoint workload, restarts them with -recover,
// and verifies the recovered Analytics Matrix is record-for-record equal to
// a synchronously replayed reference. The harness itself lives in the test
// files; run it with `go test ./internal/crashharness` (or `make crash` for
// the long randomized campaign, AIM_CRASH_KILLS=100).
package crashharness
