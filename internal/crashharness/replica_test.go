package crashharness

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/event"
	"repro/internal/netproto"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/rta"
	"repro/internal/workload"
)

// TestReplicaFailoverKillCampaign is the replication crash campaign: each
// iteration runs live cluster ingest against an aimserver child (the
// primary) while an in-process follower tails its WAL over the netproto
// wire. The primary is killed at a random crashpoint or wall-clock instant;
// the cluster's failure monitor must auto-promote the follower — sealing it
// at its watermark and topping it up from the dead primary's salvaged WAL —
// with zero acknowledged-event loss:
//
//  1. The promoted follower's own WAL starts with the primary's salvaged
//     log, LSN for LSN (every event the primary durably acknowledged
//     survived the failover exactly once, in order).
//  2. The promoted matrix equals a synchronous replay oracle of the
//     follower's WAL record for record (the post-failover state is exactly
//     explained by its log — never silently wrong).
//
// RTA queries run throughout and must either succeed (served by the
// follower during the blackout) or fail with the typed ErrNodeFailure.
// AIM_REPL_KILLS sets the iteration count (default 4 so plain `go test`
// stays fast; `make replica-crash` runs 50).
func TestReplicaFailoverKillCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("replica crash harness skipped in -short")
	}
	iters := 4
	if v := os.Getenv("AIM_REPL_KILLS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad AIM_REPL_KILLS %q", v)
		}
		iters = n
	}
	seed := time.Now().UnixNano()
	if v := os.Getenv("AIM_CRASH_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad AIM_CRASH_SEED %q", v)
		}
		seed = n
	}
	t.Logf("replica campaign: %d iterations, seed %d (rerun with AIM_CRASH_SEED=%d)", iters, seed, seed)
	rng := rand.New(rand.NewSource(seed))
	bin := buildServer(t)
	points := crashpoint.Points()

	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := workload.BuildDimensions(42) // aimserver's default seed
	if err != nil {
		t.Fatal(err)
	}

	for iter := 0; iter < iters; iter++ {
		iterDir := filepath.Join(t.TempDir(), fmt.Sprintf("it%03d", iter))
		dataDir := filepath.Join(iterDir, "data")
		tailWal := filepath.Join(iterDir, "tailwal")

		// Half the iterations run a tiered primary (tiny bucket, eager
		// freezing) so deaths land mid-freeze/thaw with the WAL stream live;
		// flat iterations never arm the freeze point — it can't fire there.
		tiered := iter%2 == 0

		spec := ""
		if iter%4 != 3 {
			p := points[rng.Intn(len(points))]
			for !tiered && p == crashpoint.CoreBucketFreeze {
				p = points[rng.Intn(len(points))]
			}
			spec = fmt.Sprintf("%s:%d", p, 1+rng.Intn(60))
		}
		extra := []string{"-checkpoint-every", "25ms", "-base-every", "3", "-checkpoint-gc=false",
			"-repl-heartbeat", "5ms"}
		if tiered {
			extra = append(extra, "-bucket", "8", "-bucket-freeze", "-cold-after", "0")
		}
		srv, err := startServer(t, bin, dataDir, spec, extra...)
		if err != nil {
			t.Fatalf("iter %d (spec %q): %v", iter, spec, err)
		}
		cli, err := netproto.DialConfig(srv.addr, sch, netproto.ClientConfig{
			CallTimeout: 2 * time.Second, MaxRetries: -1, DisableReconnect: true,
		})
		if err != nil {
			t.Fatalf("iter %d: dial: %v", iter, err)
		}

		// The follower: its own WAL-backed node, tailing the child over TCP.
		farch, err := archive.Open(filepath.Join(iterDir, "fwal"), archive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fnode, err := core.NewNode(core.Config{
			Schema: sch, Dims: dims.Store, Partitions: 2, BucketSize: 256,
			Factory: dims.Factory(sch), Archive: farch,
		})
		if err != nil {
			t.Fatal(err)
		}
		follower := repl.NewFollower(fnode, 0, repl.FollowerConfig{
			ReopenBackoff: 2 * time.Millisecond,
			Reopen: func(from uint64) (repl.Source, error) {
				return netproto.DialReplica(srv.addr, from, netproto.ReplicaConfig{})
			},
		})
		src, err := netproto.DialReplica(srv.addr, 0, netproto.ReplicaConfig{})
		if err != nil {
			t.Fatalf("iter %d: subscribe: %v", iter, err)
		}
		if err := follower.Start(src); err != nil {
			t.Fatal(err)
		}

		// The cluster ingests through the primary's breaker and auto-promotes
		// after the primary stays down; the top-up replays the dead child's
		// salvaged WAL (a private copy — salvage repairs in place, and the
		// original is this iteration's ground truth).
		cl, err := cluster.NewWithOptions([]core.Storage{cli}, cluster.Options{
			Health: cluster.HealthConfig{
				FailureThreshold: 3, ProbeInterval: 100 * time.Millisecond,
				RetryQueue: 1 << 17, RetryInterval: 5 * time.Millisecond,
			},
			Batch: cluster.BatchConfig{MaxEvents: 64, Linger: time.Millisecond},
			Replicas: cluster.ReplicaConfig{
				AutoPromote: true, PromoteAfter: 150 * time.Millisecond,
				CheckInterval: 10 * time.Millisecond,
				ReplayTail: func(_ int, fromLSN uint64, emit func(evs []event.Event) error) error {
					copyDir(t, filepath.Join(dataDir, "wal"), tailWal)
					arch, err := archive.Open(tailWal, archive.Options{Recovery: archive.Salvage})
					if err != nil {
						return err
					}
					defer arch.Close()
					return repl.ReplayArchiveTail(arch, fromLSN, 256, emit)
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.AttachFollower(0, follower); err != nil {
			t.Fatal(err)
		}

		var stop atomic.Bool
		sentCh := make(chan int, 1)
		go func() {
			sent := 0
			for i := 0; !stop.Load(); i++ {
				if err := cl.ProcessEventAsync(mkEvent(i)); err == nil {
					sent++
				}
				// ~64k events/s: enough to keep every pipeline stage busy
				// without drowning the verification replay in tens of
				// millions of events.
				if i%64 == 63 {
					time.Sleep(time.Millisecond)
				}
			}
			sentCh <- sent
		}()

		// RTA keeps querying through the blackout: success or typed failure,
		// never anything else.
		coord, err := rta.NewCoordinatorBackends(cl, rta.Config{Policy: rta.PolicyDegraded})
		if err != nil {
			t.Fatal(err)
		}
		var qstop atomic.Bool
		var qmu sync.Mutex
		var qbad error
		queries, served := 0, 0
		var qwg sync.WaitGroup
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 1; !qstop.Load(); i++ {
				q := &query.Query{ID: uint64(i), Aggs: []query.AggExpr{{Op: query.OpCount}}, GroupBy: -1}
				res, err := coord.Execute(q)
				qmu.Lock()
				queries++
				if err == nil {
					served++
					if res.Incomplete && res.CoveredNodes != 0 {
						// fine: degraded coverage is flagged, not silent
					}
				} else if !errors.Is(err, rta.ErrNodeFailure) && qbad == nil {
					qbad = err
				}
				qmu.Unlock()
				time.Sleep(2 * time.Millisecond)
			}
		}()

		// Kill the primary under live load.
		var exitCode int
		if spec == "" {
			time.Sleep(time.Duration(150+rng.Intn(450)) * time.Millisecond)
			srv.sigkill()
			exitCode = -1
		} else {
			exitCode = srv.waitExit(4 * time.Second)
		}
		if exitCode == 0 {
			t.Fatalf("iter %d (spec %q): primary exited cleanly mid-campaign", iter, spec)
		}

		// The failure monitor must promote the follower on its own.
		deadline := time.Now().Add(15 * time.Second)
		for cl.Promotions() == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("iter %d (spec %q, exit %d): no auto-promotion within 15s (follower err: %v)",
					iter, spec, exitCode, follower.Err())
			}
			time.Sleep(2 * time.Millisecond)
		}
		stop.Store(true)
		sent := <-sentCh
		qstop.Store(true)
		qwg.Wait()
		qmu.Lock()
		if qbad != nil {
			t.Fatalf("iter %d: RTA query failed with an untyped error: %v", iter, qbad)
		}
		qmu.Unlock()
		// Quiesce before snapshotting: FlushEvents drains the coalescing
		// buffers and the spill queue, Close joins the background drainer
		// (whose in-flight batch could otherwise land mid-verification), and
		// the second flush catches anything a dying delivery requeued.
		if err := cl.FlushEvents(); err != nil {
			t.Fatalf("iter %d: post-failover flush: %v", iter, err)
		}
		cl.Close()
		if err := cl.FlushEvents(); err != nil {
			t.Fatalf("iter %d: final flush: %v", iter, err)
		}

		// Check 1: the promoted follower's WAL begins with the dead
		// primary's salvaged log, LSN for LSN.
		truth, err := archive.Open(tailWal, archive.Options{Recovery: archive.Salvage})
		if err != nil {
			t.Fatalf("iter %d: reopen salvaged primary WAL: %v", iter, err)
		}
		acked := truth.NextLSN()
		pevs := make([]event.Event, 0, acked)
		if err := truth.Replay(0, func(_ uint64, ev event.Event) error {
			pevs = append(pevs, ev)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		truth.Close()
		if err := fnode.FlushEvents(); err != nil {
			t.Fatal(err)
		}
		fevs := make([]event.Event, 0, acked)
		if err := farch.Replay(0, func(_ uint64, ev event.Event) error {
			fevs = append(fevs, ev)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if uint64(len(fevs)) < acked {
			t.Fatalf("iter %d (spec %q, exit %d): primary acked %d events, follower WAL holds %d — acked loss",
				iter, spec, exitCode, acked, len(fevs))
		}
		for lsn := uint64(0); lsn < acked; lsn++ {
			if fevs[lsn] != pevs[lsn] {
				t.Fatalf("iter %d: WAL divergence at lsn %d: follower %+v, primary %+v",
					iter, lsn, fevs[lsn], pevs[lsn])
			}
		}

		// Check 2: the promoted matrix is exactly a synchronous replay of
		// the follower's WAL (prefix + top-up + spill redeliveries).
		oracle, err := core.NewNode(core.Config{
			Schema: sch, Dims: dims.Store, Partitions: 2, BucketSize: 256,
			Factory: dims.Factory(sch),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range fevs {
			if err := oracle.ProcessEventAsync(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := oracle.FlushEvents(); err != nil {
			t.Fatal(err)
		}
		for e := uint64(1); e <= entities; e++ {
			want, _, wantOK, err := oracle.Get(e)
			if err != nil {
				t.Fatal(err)
			}
			got, _, ok, err := fnode.Get(e)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK {
				t.Fatalf("iter %d: entity %d present=%v, oracle=%v", iter, e, ok, wantOK)
			}
			if !ok {
				continue
			}
			for s := 0; s < sch.Slots; s++ {
				if s == sch.VersionSlot {
					continue
				}
				if got[s] != want[s] {
					t.Fatalf("iter %d: entity %d slot %d: promoted %#x, oracle %#x",
						iter, e, s, got[s], want[s])
				}
			}
		}
		oracle.Stop()

		qmu.Lock()
		t.Logf("iter %d (spec %q, exit %d): %d events sent, %d acked by primary, %d on promoted node; %d/%d RTA queries served",
			iter, spec, exitCode, sent, acked, len(fevs), served, queries)
		qmu.Unlock()

		cli.Close()
		fnode.Stop()
		farch.Close()
		if err := os.RemoveAll(iterDir); err != nil {
			t.Fatal(err)
		}
	}
}
