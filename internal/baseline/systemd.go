package baseline

import (
	"sync"

	"repro/internal/dimension"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/vec"
)

// SystemD models the paper's "System D": a disk-based, row-organized
// database with support for fast updates. Records live row-major (good
// update locality, poor scan locality — every scan drags whole ~3 KB
// records through the cache), each update pays the commit-to-disk latency
// from the overhead model, and — mirroring the paper's concession of
// letting System D's index advisor create indexes despite the benchmark
// forbidding it — equality predicates on segmentation attributes are served
// from hash indexes.
type SystemD struct {
	sch  *schema.Schema
	dims *dimension.Store

	mu        sync.RWMutex
	rows      []schema.Record
	index     map[uint64]int // entity id -> row
	advisor   map[int]map[uint64][]int
	indexed   []int // attrs the advisor indexed (static segmentation attrs)
	factory   func(uint64) schema.Record
	overheads Overheads
}

// NewSystemD builds the engine. indexedAttrs lists the attributes the index
// advisor creates hash indexes on (typically the static segmentation
// attributes); they must not be event-driven.
func NewSystemD(sch *schema.Schema, dims *dimension.Store, factory func(uint64) schema.Record, indexedAttrs []int, ov Overheads) *SystemD {
	if factory == nil {
		factory = sch.NewRecord
	}
	d := &SystemD{
		sch:       sch,
		dims:      dims,
		index:     make(map[uint64]int),
		advisor:   make(map[int]map[uint64][]int),
		indexed:   indexedAttrs,
		factory:   factory,
		overheads: ov,
	}
	for _, a := range indexedAttrs {
		d.advisor[a] = make(map[uint64][]int)
	}
	return d
}

// Name implements Engine.
func (d *SystemD) Name() string { return "System D (disk row store)" }

// SetOverheads replaces the overhead model (benchmark preloads disable it).
func (d *SystemD) SetOverheads(ov Overheads) { d.overheads = ov }

// Len implements Engine.
func (d *SystemD) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.rows)
}

// ApplyEvent implements Engine: an in-place row update plus the modelled
// commit latency.
func (d *SystemD) ApplyEvent(ev event.Event) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.overheads.chargeUpdate()
	ri, ok := d.index[ev.Caller]
	if !ok {
		rec := d.factory(ev.Caller)
		ri = len(d.rows)
		d.rows = append(d.rows, rec)
		d.index[ev.Caller] = ri
		for _, a := range d.indexed {
			d.advisor[a][rec[a]] = append(d.advisor[a][rec[a]], ri)
		}
	}
	d.sch.Apply(d.rows[ri], &ev)
	return nil
}

// RunQuery implements Engine. If the filter is a single conjunct with an
// equality predicate on an indexed attribute, only the matching rows are
// visited; otherwise the whole table is scanned row by row.
func (d *SystemD) RunQuery(q *query.Query) (*query.Result, error) {
	if err := q.Validate(d.sch); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.overheads.chargeQuery()
	re := query.NewRowEvaluator(d.sch, d.dims)
	p := query.NewPartial(q)
	if rows, ok := d.indexLookup(q); ok {
		for _, ri := range rows {
			if err := re.AddRecord(q, d.rows[ri], p); err != nil {
				return nil, err
			}
		}
		return p.Finalize(q), nil
	}
	for _, rec := range d.rows {
		if err := re.AddRecord(q, rec, p); err != nil {
			return nil, err
		}
	}
	return p.Finalize(q), nil
}

// indexLookup returns candidate rows when the advisor's indexes apply.
func (d *SystemD) indexLookup(q *query.Query) ([]int, bool) {
	if len(q.Where) != 1 {
		return nil, false
	}
	for _, pr := range q.Where[0] {
		if pr.Op != vec.Eq {
			continue
		}
		idx, ok := d.advisor[pr.Attr]
		if !ok {
			continue
		}
		return idx[pr.Bits], true
	}
	return nil, false
}

var _ Engine = (*SystemD)(nil)
