package baseline

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/vec"
	"repro/internal/workload"
)

// harness builds the small benchmark schema, dimensions and all engines.
type harness struct {
	sch     *schema.Schema
	dims    *workload.Dimensions
	engines []Engine
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := workload.BuildDimensions(3)
	if err != nil {
		t.Fatal(err)
	}
	factory := dims.Factory(sch)
	indexed := []int{
		sch.MustAttrIndex("subscription_type"),
		sch.MustAttrIndex("category"),
		sch.MustAttrIndex("country_id"),
		sch.MustAttrIndex("value_type"),
	}
	return &harness{
		sch:  sch,
		dims: dims,
		engines: []Engine{
			NewSystemM(sch, dims.Store, factory, Overheads{}),
			NewSystemD(sch, dims.Store, factory, indexed, Overheads{}),
			NewCOWEngine(sch, dims.Store, factory, 8, 64),
		},
	}
}

func (h *harness) feed(t testing.TB, events int) {
	t.Helper()
	for _, e := range h.engines {
		gen := event.NewGenerator(50, 77) // same stream per engine
		var ev event.Event
		for i := 0; i < events; i++ {
			gen.Next(&ev)
			if err := e.ApplyEvent(ev); err != nil {
				t.Fatalf("%s: ApplyEvent: %v", e.Name(), err)
			}
		}
	}
}

func TestEnginesAgreeWithEachOther(t *testing.T) {
	h := newHarness(t)
	h.feed(t, 1000)
	// COW: publish the latest state so everyone sees all 1000 events.
	h.engines[2].(*COWEngine).RefreshSnapshot()

	g, err := workload.NewQueryGen(h.sch, 5)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*query.Query{g.Q1(1), g.Q2(3), g.Q3(), g.Q4(2, 20), g.Q5(1, 2), g.Q6(0), g.Q7(1)}
	for qi, q := range queries {
		var results []*query.Result
		for _, e := range h.engines {
			res, err := e.RunQuery(q)
			if err != nil {
				t.Fatalf("%s Q%d: %v", e.Name(), qi+1, err)
			}
			// Normalize QueryID for comparison (same q anyway).
			results = append(results, res)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0].Rows, results[i].Rows) {
				t.Fatalf("Q%d: %s and %s disagree:\n%+v\n%+v",
					qi+1, h.engines[0].Name(), h.engines[i].Name(),
					results[0].Rows, results[i].Rows)
			}
		}
	}
}

// TestEnginesAgreeWithAIM feeds the same stream to AIM and every baseline
// and checks they converge to identical query answers — the correctness
// anchor for the comparison benches.
func TestEnginesAgreeWithAIM(t *testing.T) {
	h := newHarness(t)
	h.feed(t, 500)
	h.engines[2].(*COWEngine).RefreshSnapshot()

	node, err := core.NewNode(core.Config{
		Schema: h.sch, Dims: h.dims.Store, Partitions: 2, BucketSize: 32,
		Factory: h.dims.Factory(h.sch), IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	gen := event.NewGenerator(50, 77)
	var ev event.Event
	for i := 0; i < 500; i++ {
		gen.Next(&ev)
		if err := node.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.FlushEvents(); err != nil {
		t.Fatal(err)
	}

	calls := h.sch.MustAttrIndex("calls_any_week_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	// Wait for AIM's merge rounds to publish everything.
	deadline := time.Now().Add(5 * time.Second)
	var aimSum float64
	for time.Now().Before(deadline) {
		p, err := node.SubmitQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if rows := p.Finalize(q).Rows; len(rows) > 0 {
			aimSum = rows[0].Values[0]
			if aimSum == 500 {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	for _, e := range h.engines {
		res, err := e.RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0].Values[0]; got != aimSum {
			t.Fatalf("%s sum %v != AIM %v", e.Name(), got, aimSum)
		}
	}
}

func TestSystemDIndexAdvisor(t *testing.T) {
	h := newHarness(t)
	h.feed(t, 400)
	d := h.engines[1].(*SystemD)
	sub := h.sch.MustAttrIndex("subscription_type")
	calls := h.sch.MustAttrIndex("calls_any_week_count")

	// Indexed path: single conjunct with Eq on an indexed attr.
	qIdx := &query.Query{
		ID:      1,
		Where:   []query.Conjunct{{query.PredInt(sub, vec.Eq, 2)}},
		Aggs:    []query.AggExpr{{Op: query.OpCount}},
		GroupBy: -1,
	}
	if rows, ok := d.indexLookup(qIdx); !ok {
		t.Fatal("advisor did not engage on Eq predicate")
	} else if len(rows) == 0 {
		t.Log("no entities with subscription_type=2 in this seed (acceptable)")
	}
	// Non-indexed path: range predicate.
	qRange := &query.Query{
		ID:      2,
		Where:   []query.Conjunct{{query.PredInt(calls, vec.Gt, 1)}},
		Aggs:    []query.AggExpr{{Op: query.OpCount}},
		GroupBy: -1,
	}
	if _, ok := d.indexLookup(qRange); ok {
		t.Fatal("advisor engaged on range predicate")
	}
	// Both paths agree with System M.
	for _, q := range []*query.Query{qIdx, qRange} {
		a, err := d.RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.engines[0].RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Fatalf("index path diverges: %+v vs %+v", a.Rows, b.Rows)
		}
	}
}

func TestCOWSnapshotStaleness(t *testing.T) {
	sch, _ := workload.BuildSmallSchema()
	dims, _ := workload.BuildDimensions(3)
	c := NewCOWEngine(sch, dims.Store, dims.Factory(sch), 8, 1<<30) // never auto-refresh
	calls := sch.MustAttrIndex("calls_any_week_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}

	gen := event.NewGenerator(20, 1)
	var ev event.Event
	for i := 0; i < 100; i++ {
		gen.Next(&ev)
		if err := c.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	// No snapshot yet: queries see nothing.
	res, err := c.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("pre-snapshot query saw %+v", res.Rows)
	}
	c.RefreshSnapshot()
	res, _ = c.RunQuery(q)
	if res.Rows[0].Values[0] != 100 {
		t.Fatalf("post-snapshot sum = %v", res.Rows[0].Values[0])
	}
	// More events don't change the snapshot until refresh, and writing
	// shared pages forces copies.
	before := c.PagesCopied()
	for i := 0; i < 100; i++ {
		gen.Next(&ev)
		if err := c.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	res, _ = c.RunQuery(q)
	if res.Rows[0].Values[0] != 100 {
		t.Fatalf("snapshot drifted: %v", res.Rows[0].Values[0])
	}
	if c.PagesCopied() == before {
		t.Fatal("no copy-on-write happened on shared pages")
	}
	c.RefreshSnapshot()
	res, _ = c.RunQuery(q)
	if res.Rows[0].Values[0] != 200 {
		t.Fatalf("after refresh sum = %v", res.Rows[0].Values[0])
	}
}

func TestOverheadsThrottleUpdates(t *testing.T) {
	sch, _ := workload.BuildSmallSchema()
	dims, _ := workload.BuildDimensions(3)
	m := NewSystemM(sch, dims.Store, dims.Factory(sch), Overheads{PerUpdate: 2 * time.Millisecond})
	gen := event.NewGenerator(10, 1)
	var ev event.Event
	start := time.Now()
	for i := 0; i < 10; i++ {
		gen.Next(&ev)
		if err := m.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("10 updates with 2ms overhead took %v", el)
	}
	// Calibrated presets carry the paper's rates.
	if CalibratedSystemM().PerUpdate != 10*time.Millisecond || CalibratedSystemD().PerUpdate != 5*time.Millisecond {
		t.Fatal("calibrated overheads drifted")
	}
}
