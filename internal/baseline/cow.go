package baseline

import (
	"sync"

	"repro/internal/dimension"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/schema"
)

// COWEngine is the HyPer-style copy-on-write snapshot engine (§3.1, §6):
// analytical queries run on a snapshot while the update path works on the
// live store; a write to a page still shared with the snapshot first copies
// the page — the software analogue of the fork/page-fault mechanism HyPer
// gets from the OS (Go cannot fork-share page tables; see DESIGN.md §3).
//
// Snapshots are refreshed every SnapshotEvery events, trading data
// freshness against page-copy churn — exactly the knob the paper's future
// work discusses ("controlling the frequency of the fork allows trading
// freshness ... for better event processing rate").
type COWEngine struct {
	sch  *schema.Schema
	dims *dimension.Store

	mu      sync.Mutex
	pages   []*cowPage     // live page directory
	shared  []bool         // page shared with the snapshot?
	index   map[uint64]int // entity id -> record ordinal
	n       int            // number of records
	factory func(uint64) schema.Record

	snapMu sync.RWMutex
	snap   []*cowPage // immutable snapshot page directory
	snapN  int

	// SnapshotEvery refreshes the snapshot after this many events.
	SnapshotEvery int
	// Ov optionally models per-transaction engine overheads (see
	// Overheads); zero disables the model.
	Ov Overheads
	// Rules, when set, is evaluated against every event and its updated
	// record, matching AIM's ESP work.
	Rules         *rules.Engine
	sinceSnapshot int
	pageRecords   int

	pagesCopied int64
}

type cowPage struct {
	data []uint64 // pageRecords × slots, row-major
}

// NewCOWEngine builds the engine. pageRecords <= 0 selects 16 records per
// page; snapshotEvery <= 0 selects 2048 events.
func NewCOWEngine(sch *schema.Schema, dims *dimension.Store, factory func(uint64) schema.Record, pageRecords, snapshotEvery int) *COWEngine {
	if factory == nil {
		factory = sch.NewRecord
	}
	if pageRecords <= 0 {
		pageRecords = 16
	}
	if snapshotEvery <= 0 {
		snapshotEvery = 2048
	}
	return &COWEngine{
		sch:           sch,
		dims:          dims,
		index:         make(map[uint64]int),
		factory:       factory,
		SnapshotEvery: snapshotEvery,
		pageRecords:   pageRecords,
	}
}

// Name implements Engine.
func (c *COWEngine) Name() string { return "HyPer-style COW snapshots" }

// Len implements Engine.
func (c *COWEngine) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// PagesCopied reports how many page copies copy-on-write forced; the
// ablation bench uses it to show the churn/freshness trade-off.
func (c *COWEngine) PagesCopied() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pagesCopied
}

// record returns the live record slice for ordinal ri, copying its page
// first if the snapshot still shares it.
func (c *COWEngine) record(ri int) schema.Record {
	pi, off := ri/c.pageRecords, ri%c.pageRecords
	if c.shared[pi] {
		fresh := &cowPage{data: make([]uint64, len(c.pages[pi].data))}
		copy(fresh.data, c.pages[pi].data)
		c.pages[pi] = fresh
		c.shared[pi] = false
		c.pagesCopied++
	}
	s := off * c.sch.Slots
	return c.pages[pi].data[s : s+c.sch.Slots]
}

// ApplyEvent implements Engine.
func (c *COWEngine) ApplyEvent(ev event.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Ov.chargeUpdate()
	ri, ok := c.index[ev.Caller]
	if !ok {
		ri = c.n
		if ri/c.pageRecords == len(c.pages) {
			c.pages = append(c.pages, &cowPage{data: make([]uint64, c.pageRecords*c.sch.Slots)})
			c.shared = append(c.shared, false)
		}
		c.n++
		c.index[ev.Caller] = ri
		copy(c.record(ri), c.factory(ev.Caller))
	}
	rec := c.record(ri)
	c.sch.Apply(rec, &ev)
	if c.Rules != nil {
		c.Rules.Evaluate(&ev, rec)
	}
	c.sinceSnapshot++
	if c.sinceSnapshot >= c.SnapshotEvery {
		c.refreshSnapshotLocked()
	}
	return nil
}

// RefreshSnapshot publishes the current live state as the query snapshot.
func (c *COWEngine) RefreshSnapshot() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshSnapshotLocked()
}

func (c *COWEngine) refreshSnapshotLocked() {
	snap := make([]*cowPage, len(c.pages))
	copy(snap, c.pages)
	for i := range c.shared {
		c.shared[i] = true
	}
	c.snapMu.Lock()
	c.snap = snap
	c.snapN = c.n
	c.snapMu.Unlock()
	c.sinceSnapshot = 0
}

// RunQuery implements Engine: a row scan over the immutable snapshot, never
// blocking the update path.
func (c *COWEngine) RunQuery(q *query.Query) (*query.Result, error) {
	if err := q.Validate(c.sch); err != nil {
		return nil, err
	}
	c.snapMu.RLock()
	snap, n := c.snap, c.snapN
	c.snapMu.RUnlock()
	re := query.NewRowEvaluator(c.sch, c.dims)
	p := query.NewPartial(q)
	for ri := 0; ri < n; ri++ {
		page := snap[ri/c.pageRecords]
		s := (ri % c.pageRecords) * c.sch.Slots
		if err := re.AddRecord(q, page.data[s:s+c.sch.Slots], p); err != nil {
			return nil, err
		}
	}
	return p.Finalize(q), nil
}

var _ Engine = (*COWEngine)(nil)
