// Package baseline implements the comparison systems of the paper's
// evaluation (§5.1, §5.3): System M (a main-memory column store optimized
// for real-time analytics), System D (a disk-based row store with support
// for fast updates and an index advisor), and a HyPer-style copy-on-write
// snapshot engine. All three serve the same Analytics-Matrix workload as
// AIM — UPDATE_MATRIX per event, the seven RTA query templates — so the
// benchmark harness can reproduce the paper's relative comparisons.
//
// The commercial systems are modelled structurally (locking discipline,
// storage layout, scan granularity) with configurable per-transaction
// overheads calibrated to the event rates the paper reports (System M
// ≈100 ev/s, System D ≈200 ev/s); see DESIGN.md §3 for the substitution
// rationale. Query execution is real work over real data — no modelled
// latencies on the read side.
package baseline

import (
	"time"

	"repro/internal/event"
	"repro/internal/query"
)

// Engine is the minimal surface the comparison harness drives.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// ApplyEvent runs the full UPDATE_MATRIX path for one event.
	ApplyEvent(ev event.Event) error
	// RunQuery executes one ad-hoc query and returns the finalized result.
	RunQuery(q *query.Query) (*query.Result, error)
	// Len returns the number of Entity Records stored.
	Len() int
}

// Overheads models the per-transaction costs of the commercial systems that
// our structural reproduction cannot incur natively (SQL parsing, MVCC
// bookkeeping, buffer-manager latching, log flushes to disk). Zero values
// disable the model, leaving only real structural costs.
type Overheads struct {
	// PerUpdate is charged on every ApplyEvent.
	PerUpdate time.Duration
	// PerQuery is charged on every RunQuery.
	PerQuery time.Duration
}

func (o Overheads) chargeUpdate() {
	if o.PerUpdate > 0 {
		busyWait(o.PerUpdate)
	}
}

func (o Overheads) chargeQuery() {
	if o.PerQuery > 0 {
		busyWait(o.PerQuery)
	}
}

// busyWait spends d of CPU time. A sleeping wait would let the Go scheduler
// overlap thousands of "transactions", which a single-writer commercial
// engine cannot do; burning the time models an occupied worker.
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// CalibratedSystemM returns the overheads that reproduce the paper's
// reported System M event rate (~100 events/second).
func CalibratedSystemM() Overheads { return Overheads{PerUpdate: 10 * time.Millisecond} }

// CalibratedSystemD returns the overheads that reproduce the paper's
// reported System D event rate (~200 events/second, dominated by the
// commit-to-disk latency).
func CalibratedSystemD() Overheads { return Overheads{PerUpdate: 5 * time.Millisecond} }

// CalibratedHyPer returns the overheads that reproduce the paper's reported
// HyPer event rate (~5,500 events/second in isolation): the per-transaction
// invocation cost of a 2015-era fork-snapshot OLTP engine, which our
// software copy-on-write substrate does not pay natively.
func CalibratedHyPer() Overheads { return Overheads{PerUpdate: 180 * time.Microsecond} }
