package baseline

import (
	"sync"

	"repro/internal/columnmap"
	"repro/internal/dimension"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

// SystemM models the paper's "System M": a main-memory column store
// optimized for real-time analytics. Queries scan columns directly (fast in
// isolation) but each query performs its own full scan — no shared scans —
// and updates must latch the store exclusively and scatter each record
// across all ~550 columns (the "500 random memory accesses" §6 attributes
// to column stores under update load).
type SystemM struct {
	sch  *schema.Schema
	dims *dimension.Store

	mu        sync.RWMutex
	store     *columnmap.ColumnMap
	factory   func(uint64) schema.Record
	overheads Overheads
	scratch   schema.Record
}

// NewSystemM builds the engine. factory may be nil.
func NewSystemM(sch *schema.Schema, dims *dimension.Store, factory func(uint64) schema.Record, ov Overheads) *SystemM {
	if factory == nil {
		factory = sch.NewRecord
	}
	return &SystemM{
		sch:  sch,
		dims: dims,
		// A very large bucket size degrades ColumnMap to a pure column
		// store (§4.5); 64k keeps allocation granularity sane.
		store:     columnmap.New(sch.Slots, 1<<16),
		factory:   factory,
		overheads: ov,
		scratch:   make(schema.Record, sch.Slots),
	}
}

// Name implements Engine.
func (m *SystemM) Name() string { return "System M (column store)" }

// SetOverheads replaces the overhead model (benchmark preloads disable it).
func (m *SystemM) SetOverheads(ov Overheads) { m.overheads = ov }

// Len implements Engine.
func (m *SystemM) Len() int { return m.store.Len() }

// ApplyEvent implements Engine: an exclusive-latch update transaction.
func (m *SystemM) ApplyEvent(ev event.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.overheads.chargeUpdate()
	rec := m.scratch
	found, err := m.store.GatherEntity(ev.Caller, rec)
	if err != nil {
		return err
	}
	if !found {
		copy(rec, m.factory(ev.Caller))
	}
	m.sch.Apply(rec, &ev)
	return m.store.Upsert(rec)
}

// RunQuery implements Engine: a private (unshared) columnar scan under a
// read latch.
func (m *SystemM) RunQuery(q *query.Query) (*query.Result, error) {
	if err := q.Validate(m.sch); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.overheads.chargeQuery()
	ex := query.NewExecutor(m.sch, m.dims)
	p := query.NewPartial(q)
	for _, b := range m.store.Snapshot() {
		if err := ex.ProcessBucket(b, q, p); err != nil {
			return nil, err
		}
	}
	return p.Finalize(q), nil
}

var _ Engine = (*SystemM)(nil)
