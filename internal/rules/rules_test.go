package rules

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/schema"
)

// ruleSchema builds a schema with the indicators the paper's example rules
// reference: calls today, total cost today, total duration today.
func ruleSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		AddGroup(schema.GroupSpec{Name: "cost_today", Metric: schema.MetricCost,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggSum}}).
		AddGroup(schema.GroupSpec{Name: "dur_today", Metric: schema.MetricDuration,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggSum}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// paperRules returns the two example rules from Table 2.
func paperRules(sch *schema.Schema) []Rule {
	calls := sch.MustAttrIndex("calls_today_count")
	cost := sch.MustAttrIndex("cost_today_sum")
	dur := sch.MustAttrIndex("dur_today_sum")
	return []Rule{
		{
			ID: 1, Name: "free-minutes", Action: "offer-free-minutes",
			Conjuncts: []Conjunct{{
				{Kind: LHSAttr, Attr: calls, Op: Gt, Value: 20},
				{Kind: LHSAttr, Attr: cost, Op: Gt, Value: 100},
				{Kind: LHSEventDuration, Op: Gt, Value: 300},
			}},
		},
		{
			ID: 2, Name: "phone-misuse", Action: "advise-screen-lock",
			Conjuncts: []Conjunct{{
				{Kind: LHSAttr, Attr: calls, Op: Gt, Value: 30},
				{Kind: LHSAttrRatio, Attr: dur, Attr2: calls, Op: Lt, Value: 10},
			}},
		},
	}
}

func applyN(t testing.TB, sch *schema.Schema, rec schema.Record, n int, dur int64, cost float64) *event.Event {
	t.Helper()
	var ev event.Event
	base := int64(100 * 24 * 3600 * 1000)
	for i := 0; i < n; i++ {
		ev = event.Event{Caller: rec.EntityID(), Timestamp: base + int64(i), Duration: dur, Cost: cost}
		sch.Apply(rec, &ev)
	}
	return &ev
}

func TestPaperRule1(t *testing.T) {
	sch := ruleSchema(t)
	rs := paperRules(sch)
	rec := sch.NewRecord(5)
	// 25 calls of $5 each: calls=25 > 20, cost=125 > 100.
	last := applyN(t, sch, rec, 25, 400, 5)
	got := EvaluateAll(rs, last, rec, sch)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("matched %v, want rule 1 only", got)
	}
	// Short final call: event predicate fails.
	shortCall := *last
	shortCall.Duration = 100
	if m := EvaluateAll(rs, &shortCall, rec, sch); len(m) != 0 {
		t.Fatalf("short call matched %v", m)
	}
}

func TestPaperRule2Ratio(t *testing.T) {
	sch := ruleSchema(t)
	rs := paperRules(sch)
	rec := sch.NewRecord(5)
	// 40 calls of 5 seconds: ratio 5 < 10, calls 40 > 30 -> rule 2 fires.
	last := applyN(t, sch, rec, 40, 5, 0.01)
	got := EvaluateAll(rs, last, rec, sch)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("matched %v, want rule 2 only", got)
	}
}

func TestRatioZeroDenominator(t *testing.T) {
	sch := ruleSchema(t)
	calls := sch.MustAttrIndex("calls_today_count")
	dur := sch.MustAttrIndex("dur_today_sum")
	p := Predicate{Kind: LHSAttrRatio, Attr: dur, Attr2: calls, Op: Eq, Value: 0}
	rec := sch.NewRecord(1) // no events: calls = 0
	ev := &event.Event{Caller: 1, Timestamp: 1}
	if !p.Eval(ev, rec, sch) {
		t.Fatal("ratio with zero denominator should read as 0")
	}
}

func TestAllCmpOps(t *testing.T) {
	sch := ruleSchema(t)
	rec := sch.NewRecord(1)
	ev := &event.Event{Caller: 1, Timestamp: 1, Duration: 10, Cost: 2.5, LongDistance: true}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{Kind: LHSEventDuration, Op: Lt, Value: 11}, true},
		{Predicate{Kind: LHSEventDuration, Op: Le, Value: 10}, true},
		{Predicate{Kind: LHSEventDuration, Op: Gt, Value: 10}, false},
		{Predicate{Kind: LHSEventDuration, Op: Ge, Value: 10}, true},
		{Predicate{Kind: LHSEventCost, Op: Eq, Value: 2.5}, true},
		{Predicate{Kind: LHSEventCost, Op: Ne, Value: 2.5}, false},
		{Predicate{Kind: LHSEventLongDistance, Op: Eq, Value: 1}, true},
	}
	for i, c := range cases {
		if got := c.p.Eval(ev, rec, sch); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	sch := ruleSchema(t)
	bad := []Rule{
		{ID: 1},
		{ID: 2, Conjuncts: []Conjunct{{}}},
		{ID: 3, Conjuncts: []Conjunct{{{Kind: LHSAttr, Attr: 999, Op: Gt}}}},
		{ID: 4, Conjuncts: []Conjunct{{{Kind: LHSAttrRatio, Attr: 0, Attr2: 999, Op: Gt}}}},
		{ID: 5, Conjuncts: []Conjunct{{{Kind: LHSEventCost, Op: Gt}}}, Policy: FiringPolicy{Limit: 1}},
	}
	for _, r := range bad {
		if err := r.Validate(sch); err == nil {
			t.Errorf("rule %d validated, want error", r.ID)
		}
	}
	if _, err := NewEngine(sch, bad[:1], false); err == nil {
		t.Error("NewEngine accepted invalid rule")
	}
	dup := []Rule{
		{ID: 1, Conjuncts: []Conjunct{{{Kind: LHSEventCost, Op: Gt, Value: 0}}}},
		{ID: 1, Conjuncts: []Conjunct{{{Kind: LHSEventCost, Op: Gt, Value: 1}}}},
	}
	if _, err := NewEngine(sch, dup, false); err == nil {
		t.Error("NewEngine accepted duplicate rule ids")
	}
}

func TestFiringPolicy(t *testing.T) {
	sch := ruleSchema(t)
	day := int64(24 * 3600 * 1000)
	rs := []Rule{{
		ID: 1, Action: "act",
		Conjuncts: []Conjunct{{{Kind: LHSEventCost, Op: Ge, Value: 0}}}, // always true
		Policy:    FiringPolicy{Limit: 2, WindowMillis: day},
	}}
	eng, err := NewEngine(sch, rs, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := sch.NewRecord(9)
	base := 100 * day
	fire := func(ts int64, entity uint64) int {
		ev := &event.Event{Caller: entity, Timestamp: ts, Cost: 1}
		sch.Apply(rec, ev)
		return len(eng.Evaluate(ev, rec))
	}
	if fire(base, 9) != 1 || fire(base+1, 9) != 1 {
		t.Fatal("first two firings should pass")
	}
	if fire(base+2, 9) != 0 {
		t.Fatal("third firing in window should be suppressed")
	}
	// Different entity has its own budget.
	if fire(base+3, 10) != 1 {
		t.Fatal("other entity should fire")
	}
	// Next day the window resets.
	if fire(base+day, 9) != 1 {
		t.Fatal("new window should fire again")
	}
}

func TestEngineFiringFields(t *testing.T) {
	sch := ruleSchema(t)
	eng, err := NewEngine(sch, paperRules(sch), false)
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumRules() != 2 {
		t.Fatalf("NumRules = %d", eng.NumRules())
	}
	rec := sch.NewRecord(5)
	last := applyN(t, sch, rec, 25, 400, 5)
	fs := eng.Evaluate(last, rec)
	if len(fs) != 1 {
		t.Fatalf("firings = %v", fs)
	}
	f := fs[0]
	if f.RuleID != 1 || f.Action != "offer-free-minutes" || f.EntityID != 5 || f.Timestamp != last.Timestamp {
		t.Fatalf("firing = %+v", f)
	}
}

// randomRules builds n random rules over the schema's numeric attributes,
// with predicate values drawn from a small set so predicates repeat across
// rules (the sharing the index exploits).
func randomRules(sch *schema.Schema, n int, rng *rand.Rand) []Rule {
	attrs := []int{
		sch.MustAttrIndex("calls_today_count"),
		sch.MustAttrIndex("cost_today_sum"),
		sch.MustAttrIndex("dur_today_sum"),
	}
	rs := make([]Rule, n)
	for i := range rs {
		nc := 1 + rng.Intn(4)
		conjs := make([]Conjunct, nc)
		for c := range conjs {
			np := 1 + rng.Intn(4)
			preds := make(Conjunct, np)
			for p := range preds {
				preds[p] = Predicate{
					Kind:  LHSAttr,
					Attr:  attrs[rng.Intn(len(attrs))],
					Op:    CmpOp(rng.Intn(6)),
					Value: float64(rng.Intn(8) * 10),
				}
			}
			conjs[c] = preds
		}
		rs[i] = Rule{ID: i, Conjuncts: conjs}
	}
	return rs
}

// TestIndexMatchesStraightforward cross-checks the rule index against
// Algorithm 2 on random rules and random records.
func TestIndexMatchesStraightforward(t *testing.T) {
	sch := ruleSchema(t)
	rng := rand.New(rand.NewSource(11))
	rs := randomRules(sch, 200, rng)
	idx := NewIndex(rs)
	if idx.NumDistinctPredicates() >= 200*4*4 {
		t.Fatal("index shares no predicates")
	}
	for trial := 0; trial < 50; trial++ {
		rec := sch.NewRecord(uint64(trial))
		ev := applyN(t, sch, rec, rng.Intn(40), int64(rng.Intn(500)+1), float64(rng.Intn(10)))
		var straight []int
		for i := range rs {
			if rs[i].Matches(ev, rec, sch) {
				straight = append(straight, i)
			}
		}
		indexed := idx.Evaluate(ev, rec, sch)
		if !reflect.DeepEqual(straight, indexed) {
			t.Fatalf("trial %d: straight %v != indexed %v", trial, straight, indexed)
		}
	}
}

// TestQuickEngineIndexEquivalence property-tests that engines with and
// without the index always produce identical firings.
func TestQuickEngineIndexEquivalence(t *testing.T) {
	sch := ruleSchema(t)
	rng := rand.New(rand.NewSource(23))
	rs := randomRules(sch, 60, rng)
	plain, err := NewEngine(sch, rs, false)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := NewEngine(sch, rs, true)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nEvents uint8, dur uint16, cost uint8) bool {
		rec1 := sch.NewRecord(1)
		rec2 := sch.NewRecord(1)
		base := int64(100 * 24 * 3600 * 1000)
		for i := 0; i <= int(nEvents)%30; i++ {
			ev := &event.Event{Caller: 1, Timestamp: base + int64(i), Duration: int64(dur%500) + 1, Cost: float64(cost)}
			sch.Apply(rec1, ev)
			sch.Apply(rec2, ev)
			a := plain.Evaluate(ev, rec1)
			b := indexed.Evaluate(ev, rec2)
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
