package rules

import (
	"repro/internal/event"
	"repro/internal/schema"
)

// Index is a predicate-sharing rule index in the spirit of Fabret et al.
// (§4.4): identical predicates appearing in many rules are deduplicated and
// evaluated at most once per event (lazily, memoized), and conjunct/rule
// bookkeeping turns predicate outcomes into the matched-rule set. For large
// rule sets with heavy predicate overlap this beats the straight-forward
// Algorithm 2; the paper (and our reproduction bench) finds the crossover
// around a thousand rules.
type Index struct {
	preds []Predicate // distinct predicates
	// conjuncts[c] lists the distinct-predicate ids of conjunct c.
	conjuncts [][]int32
	// conjRule[c] is the index into rules of the conjunct's rule.
	conjRule []int32
	// ruleConjStart[r]..ruleConjStart[r+1] are rule r's conjunct ids
	// (conjuncts are grouped by rule in construction order).
	ruleConjStart []int32

	// memo[p]: 0 unknown, 1 true, 2 false. Reset per evaluation via the
	// epoch trick to avoid clearing.
	memo      []uint8
	memoEpoch []uint32
	epoch     uint32
}

// NewIndex builds an index over rs. The caller retains ownership of rs; the
// index stores conjunct structure and predicate values only.
func NewIndex(rs []Rule) *Index {
	idx := &Index{}
	predID := make(map[Predicate]int32)
	for ri := range rs {
		idx.ruleConjStart = append(idx.ruleConjStart, int32(len(idx.conjuncts)))
		for _, c := range rs[ri].Conjuncts {
			ids := make([]int32, 0, len(c))
			for _, p := range c {
				id, ok := predID[p]
				if !ok {
					id = int32(len(idx.preds))
					predID[p] = id
					idx.preds = append(idx.preds, p)
				}
				ids = append(ids, id)
			}
			idx.conjuncts = append(idx.conjuncts, ids)
			idx.conjRule = append(idx.conjRule, int32(ri))
		}
	}
	idx.ruleConjStart = append(idx.ruleConjStart, int32(len(idx.conjuncts)))
	idx.memo = make([]uint8, len(idx.preds))
	idx.memoEpoch = make([]uint32, len(idx.preds))
	return idx
}

// NumDistinctPredicates reports how many predicates remain after sharing.
func (idx *Index) NumDistinctPredicates() int { return len(idx.preds) }

// Evaluate returns the ids (indices into the original rule slice) of all
// rules matching the event/record pair. Each distinct predicate is evaluated
// at most once.
func (idx *Index) Evaluate(ev *event.Event, rec schema.Record, sch *schema.Schema) []int {
	idx.epoch++
	var matched []int
	nRules := len(idx.ruleConjStart) - 1
	for r := 0; r < nRules; r++ {
		lo, hi := idx.ruleConjStart[r], idx.ruleConjStart[r+1]
		for c := lo; c < hi; c++ {
			if idx.conjunctTrue(idx.conjuncts[c], ev, rec, sch) {
				matched = append(matched, r)
				break // early success for this rule
			}
		}
	}
	return matched
}

func (idx *Index) conjunctTrue(predIDs []int32, ev *event.Event, rec schema.Record, sch *schema.Schema) bool {
	for _, id := range predIDs {
		if !idx.predTrue(id, ev, rec, sch) {
			return false // early abort
		}
	}
	return true
}

func (idx *Index) predTrue(id int32, ev *event.Event, rec schema.Record, sch *schema.Schema) bool {
	if idx.memoEpoch[id] == idx.epoch {
		return idx.memo[id] == 1
	}
	v := idx.preds[id].Eval(ev, rec, sch)
	idx.memoEpoch[id] = idx.epoch
	if v {
		idx.memo[id] = 1
	} else {
		idx.memo[id] = 2
	}
	return v
}
