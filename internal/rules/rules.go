// Package rules implements AIM's Business Rule subsystem (§2.2, §4.4): DNF
// rules evaluated against each incoming event and the freshly updated Entity
// Record, firing policies that bound how often a rule may trigger, and a
// Fabret-style predicate-sharing rule index for large rule sets.
package rules

import (
	"fmt"
	"math"

	"repro/internal/event"
	"repro/internal/schema"
)

// LHSKind selects what the left-hand side of a predicate reads.
type LHSKind uint8

const (
	// LHSAttr reads a visible attribute of the updated Entity Record.
	LHSAttr LHSKind = iota
	// LHSAttrRatio reads Attr/Attr2 of the record (0 when Attr2 is 0),
	// e.g. the paper's "total-duration-today / number-of-calls-today".
	LHSAttrRatio
	// LHSEventDuration reads the event's call duration in seconds.
	LHSEventDuration
	// LHSEventCost reads the event's cost.
	LHSEventCost
	// LHSEventLongDistance reads 1 for long-distance events, else 0.
	LHSEventLongDistance
)

// CmpOp mirrors vec.CmpOp for rule predicates (kept separate so the rules
// package has no dependency on the scan kernels).
type CmpOp uint8

const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

// Predicate compares a record/event reading against a constant. Predicates
// are value types and comparable, which the rule index exploits to share
// identical predicates across rules.
type Predicate struct {
	Kind  LHSKind
	Attr  int
	Attr2 int
	Op    CmpOp
	Value float64
}

// read extracts the predicate's left-hand side.
func (p Predicate) read(ev *event.Event, rec schema.Record, sch *schema.Schema) float64 {
	switch p.Kind {
	case LHSAttr:
		return rec.Value(p.Attr, sch.Attrs[p.Attr].Type)
	case LHSAttrRatio:
		den := rec.Value(p.Attr2, sch.Attrs[p.Attr2].Type)
		if den == 0 {
			return 0
		}
		return rec.Value(p.Attr, sch.Attrs[p.Attr].Type) / den
	case LHSEventDuration:
		return float64(ev.Duration)
	case LHSEventCost:
		return ev.Cost
	case LHSEventLongDistance:
		if ev.LongDistance {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}

// Eval evaluates the predicate against an event and record.
func (p Predicate) Eval(ev *event.Event, rec schema.Record, sch *schema.Schema) bool {
	v := p.read(ev, rec, sch)
	switch p.Op {
	case Lt:
		return v < p.Value
	case Le:
		return v <= p.Value
	case Gt:
		return v > p.Value
	case Ge:
		return v >= p.Value
	case Eq:
		return v == p.Value
	case Ne:
		return v != p.Value
	default:
		return false
	}
}

// Conjunct is an AND of predicates.
type Conjunct []Predicate

// FiringPolicy bounds rule firings per entity within a tumbling time window
// (§2.2). The zero value means "fire on every match".
type FiringPolicy struct {
	// Limit is the maximum number of firings per entity per window; 0
	// disables the policy.
	Limit int
	// WindowMillis is the tumbling-window width.
	WindowMillis int64
}

// Rule is one Business Rule in disjunctive normal form.
type Rule struct {
	// ID must be unique within an Engine.
	ID int
	// Name describes the rule ("free-minutes campaign").
	Name string
	// Action is the action tag delivered to the action sink when the rule
	// fires (the paper's "inform subscriber ..." payloads).
	Action string
	// Conjuncts is the DNF body: OR over conjuncts, AND within.
	Conjuncts []Conjunct
	// Policy optionally bounds firings.
	Policy FiringPolicy
}

// Matches implements the straight-forward evaluation of a single rule with
// early abort per conjunct (Algorithm 2's inner loops).
func (r *Rule) Matches(ev *event.Event, rec schema.Record, sch *schema.Schema) bool {
	for _, c := range r.Conjuncts {
		matching := true
		for _, p := range c {
			if !p.Eval(ev, rec, sch) {
				matching = false
				break // early abort
			}
		}
		if matching {
			return true // early success
		}
	}
	return false
}

// Validate checks the rule's attribute references against a schema.
func (r *Rule) Validate(sch *schema.Schema) error {
	if len(r.Conjuncts) == 0 {
		return fmt.Errorf("rules: rule %d has no conjuncts", r.ID)
	}
	for ci, c := range r.Conjuncts {
		if len(c) == 0 {
			return fmt.Errorf("rules: rule %d conjunct %d is empty", r.ID, ci)
		}
		for _, p := range c {
			switch p.Kind {
			case LHSAttr:
				if p.Attr < 0 || p.Attr >= sch.NumAttrs() {
					return fmt.Errorf("rules: rule %d references attribute %d out of range", r.ID, p.Attr)
				}
			case LHSAttrRatio:
				if p.Attr < 0 || p.Attr >= sch.NumAttrs() || p.Attr2 < 0 || p.Attr2 >= sch.NumAttrs() {
					return fmt.Errorf("rules: rule %d ratio references attribute out of range", r.ID)
				}
			}
		}
	}
	if r.Policy.Limit > 0 && r.Policy.WindowMillis <= 0 {
		return fmt.Errorf("rules: rule %d has a firing limit without a window", r.ID)
	}
	return nil
}

// EvaluateAll is Algorithm 2: it returns the rules in rs whose DNF matches
// the event/record pair, using early abort and early success.
func EvaluateAll(rs []Rule, ev *event.Event, rec schema.Record, sch *schema.Schema) []*Rule {
	var result []*Rule
	for i := range rs {
		if rs[i].Matches(ev, rec, sch) {
			result = append(result, &rs[i])
		}
	}
	return result
}
