package rules

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/schema"
)

// Firing reports one rule firing to the action sink.
type Firing struct {
	RuleID   int
	Action   string
	EntityID uint64
	// Timestamp is the triggering event's timestamp.
	Timestamp int64
}

// Engine evaluates a rule set against events, enforcing firing policies.
// The rule set is replicated read-only at each ESP node (§3.4); an Engine is
// confined to one ESP thread and needs no locking.
type Engine struct {
	sch   *schema.Schema
	rules []Rule
	index *Index // nil = straight-forward Algorithm 2

	// firing state per (rule, entity), for rules with a policy.
	fired map[fireKey]*fireState
}

type fireKey struct {
	rule   int
	entity uint64
}

type fireState struct {
	windowStart int64
	count       int
}

// NewEngine validates the rules and returns an engine. useIndex selects the
// Fabret-style predicate index over the straight-forward evaluator.
func NewEngine(sch *schema.Schema, rs []Rule, useIndex bool) (*Engine, error) {
	seen := make(map[int]bool, len(rs))
	for i := range rs {
		if err := rs[i].Validate(sch); err != nil {
			return nil, err
		}
		if seen[rs[i].ID] {
			return nil, fmt.Errorf("rules: duplicate rule id %d", rs[i].ID)
		}
		seen[rs[i].ID] = true
	}
	e := &Engine{sch: sch, rules: rs, fired: make(map[fireKey]*fireState)}
	if useIndex {
		e.index = NewIndex(rs)
	}
	return e, nil
}

// NumRules returns the rule-set size.
func (e *Engine) NumRules() int { return len(e.rules) }

// ReadAttrs returns the visible attribute slots the rule set reads from
// Entity Records (LHSAttr and both sides of LHSAttrRatio), deduplicated.
// Storage layers use it to materialize only the record portions rule
// evaluation can observe on intermediate batch states.
func (e *Engine) ReadAttrs() []int {
	seen := make(map[int]bool)
	var out []int
	add := func(a int) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for i := range e.rules {
		for _, c := range e.rules[i].Conjuncts {
			for _, p := range c {
				switch p.Kind {
				case LHSAttr:
					add(p.Attr)
				case LHSAttrRatio:
					add(p.Attr)
					add(p.Attr2)
				}
			}
		}
	}
	return out
}

// Evaluate runs the rule set against one event and its updated Entity
// Record and returns the firings permitted by the firing policies.
func (e *Engine) Evaluate(ev *event.Event, rec schema.Record) []Firing {
	var out []Firing
	emit := func(r *Rule) {
		if !e.allowFiring(r, ev) {
			return
		}
		out = append(out, Firing{
			RuleID:    r.ID,
			Action:    r.Action,
			EntityID:  ev.Caller,
			Timestamp: ev.Timestamp,
		})
	}
	if e.index != nil {
		for _, ri := range e.index.Evaluate(ev, rec, e.sch) {
			emit(&e.rules[ri])
		}
		return out
	}
	for _, r := range EvaluateAll(e.rules, ev, rec, e.sch) {
		emit(r)
	}
	return out
}

// allowFiring enforces the rule's tumbling-window firing policy.
func (e *Engine) allowFiring(r *Rule, ev *event.Event) bool {
	if r.Policy.Limit <= 0 {
		return true
	}
	key := fireKey{rule: r.ID, entity: ev.Caller}
	st := e.fired[key]
	windowStart := ev.Timestamp - ev.Timestamp%r.Policy.WindowMillis
	if st == nil {
		st = &fireState{windowStart: windowStart}
		e.fired[key] = st
	} else if st.windowStart != windowStart {
		st.windowStart = windowStart
		st.count = 0
	}
	if st.count >= r.Policy.Limit {
		return false
	}
	st.count++
	return true
}
